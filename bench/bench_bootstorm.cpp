/**
 * @file
 * 256-VM boot storm: cold first-pass convergence wall time with the
 * scanner's lane-parallel content kernels on vs. off (headline bench
 * for the batched classify stage), plus a migration-arrival variant.
 *
 * A boot storm is the cold-path worst case the dirty-log machinery
 * cannot help: every page is first-touch, so every visit pays the full
 * checksum (and usually digest) chain. The batch stage attacks exactly
 * that cost — the serial hashCombine chain is latency-bound on three
 * dependent multiplies, so interleaving independent pages turns the
 * cold pass throughput-bound.
 *
 * Three measurements:
 *
 *   1. BM_ColdContentKernels — the kernel microbench: ns/page for the
 *      scalar checksum()+digest() pair vs. checksumBatch()+digestBatch()
 *      over the same pages (the acceptance floor is 2x here);
 *   2. cold convergence — build the full host (no warm-up run: all
 *      pages cold) and time runToQuiescence(), batch window 16 vs. 1;
 *   3. migration arrival — add fresh VMs to the converged host and
 *      time re-convergence (the cluster layer's arrival regime).
 *
 * Identity gate BEFORE any timing is reported: the full stat registry
 * (minus the documented machine-sizing counters) and a hash of the
 * complete trace stream must be byte-identical across the whole
 * batch x scan-thread x commit-shard matrix. argv: [vms] [arrivals]
 * (defaults 256 and 8; CI runs a reduced host).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/hash.hh"
#include "bench/bench_common.hh"
#include "bench/bench_json.hh"
#include "mem/page_data.hh"
#include "workload/workload_spec.hh"

using namespace jtps;

namespace
{

/** Compiler barrier: keeps the kernel results observably stored. */
inline void
clobber()
{
    asm volatile("" ::: "memory");
}

struct KernelBench
{
    double scalarNsPerPage = 0.0;
    double batchNsPerPage = 0.0;
    double speedup = 0.0;
};

/**
 * BM_ColdContentKernels: the per-page cost of a cold visit's content
 * work (one checksum + one digest), scalar vs. batched, over a pool
 * large enough to defeat trivial caching and re-walked enough times
 * to dominate the clock reads.
 */
KernelBench
benchColdContentKernels()
{
    constexpr std::size_t pages = 4096;
    constexpr int reps = 96;
    std::vector<mem::PageData> pool(pages);
    for (std::size_t i = 0; i < pages; ++i)
        pool[i] = mem::PageData::filled(i, 0xc01dbeefULL);
    std::vector<const mem::PageData *> ptrs(pages);
    for (std::size_t i = 0; i < pages; ++i)
        ptrs[i] = &pool[i];
    std::vector<std::uint32_t> sums(pages);
    std::vector<std::uint64_t> digs(pages);

    // Warm both paths (page the pool in, settle the clocks).
    for (std::size_t i = 0; i < pages; ++i) {
        sums[i] = ptrs[i]->checksum();
        digs[i] = ptrs[i]->digest();
    }
    mem::checksumBatch(ptrs.data(), sums.data(), pages);
    mem::digestBatch(ptrs.data(), digs.data(), pages);
    clobber();

    const auto s0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
        for (std::size_t i = 0; i < pages; ++i) {
            sums[i] = ptrs[i]->checksum();
            digs[i] = ptrs[i]->digest();
        }
        clobber();
    }
    const auto s1 = std::chrono::steady_clock::now();

    const auto b0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
        mem::checksumBatch(ptrs.data(), sums.data(), pages);
        mem::digestBatch(ptrs.data(), digs.data(), pages);
        clobber();
    }
    const auto b1 = std::chrono::steady_clock::now();

    // The batched values must be the scalar values, page for page —
    // the microbench doubles as one more identity check.
    for (std::size_t i = 0; i < pages; ++i) {
        if (sums[i] != ptrs[i]->checksum() ||
            digs[i] != ptrs[i]->digest()) {
            std::fprintf(stderr, "FAIL: batch kernel mismatch at page "
                                 "%zu\n", i);
            std::exit(1);
        }
    }

    KernelBench kb;
    const double denom = static_cast<double>(pages) * reps;
    kb.scalarNsPerPage =
        std::chrono::duration<double, std::nano>(s1 - s0).count() / denom;
    kb.batchNsPerPage =
        std::chrono::duration<double, std::nano>(b1 - b0).count() / denom;
    kb.speedup = kb.scalarNsPerPage / kb.batchNsPerPage;
    return kb;
}

/** One scanner configuration of the identity/timing matrix. */
struct MatrixPoint
{
    std::uint32_t batch;
    unsigned threads;
    unsigned shards;
};

struct StormResult
{
    double coldMs = 0.0;    //!< cold boot-storm convergence wall time
    double arrivalMs = 0.0; //!< migration-arrival re-convergence
    std::uint64_t pagesSharing = 0;
    std::uint64_t residentPages = 0;
    std::uint64_t batchKernelPages = 0;
    std::uint64_t batchFlushes = 0;
    std::string coldSig;  //!< registry+trace after cold convergence
    std::string finalSig; //!< registry+trace after the arrivals
};

/** The density host's population (same 4-cycle as bench_host256). */
std::vector<workload::WorkloadSpec>
hostSpecs(std::size_t count)
{
    workload::WorkloadSpec idle = workload::dayTraderIntel();
    idle.name += "-idle";
    idle.clientThreads = 1;
    idle.guestCacheTouchesPerEpoch = 60;
    idle.lazyClassesPerEpoch = 40;
    idle.jitCompilesPerEpoch = 12;
    const workload::WorkloadSpec cycle[] = {
        workload::dayTraderIntel(), idle,
        workload::specjEnterprise2010(), workload::tuscanyBigbank()};
    std::vector<workload::WorkloadSpec> specs;
    specs.reserve(count);
    for (std::size_t l = 0; l < count; ++l)
        specs.push_back(cycle[l % 4]);
    return specs;
}

core::ScenarioConfig
stormConfig(std::size_t vms, const MatrixPoint &p)
{
    core::ScenarioConfig cfg = bench::paperConfig(true);
    cfg.host.ramBytes = vms * 640ULL * MiB;
    // The three knobs under test; everything else identical.
    cfg.ksmBatchPages = p.batch;
    cfg.ksmScanThreads = p.threads;
    cfg.ksmCommitShards = p.shards;
    return cfg;
}

/**
 * Full stat registry plus a fold of the entire trace stream, minus the
 * documented machine-sizing counters — the scan-thread, commit-shard
 * and batch-window accounting that follows the pipeline shape
 * (docs/METRICS.md). Everything else must match bytewise across the
 * whole matrix.
 */
std::string
identitySignature(core::Scenario &sc)
{
    static const char *sizing[] = {
        "ksm.commit_shards",       "ksm.shard_imbalance_max",
        "ksm.scan_shards",         "ksm.precheck_candidates",
        "ksm.commit_replays",      "ksm.batch_kernel_pages",
        "ksm.batch_flushes",
    };
    std::string sig;
    sig.reserve(1 << 14);
    for (const auto &[name, value] : sc.stats().counters()) {
        bool skip = false;
        for (const char *s : sizing)
            skip = skip || name == s;
        if (skip)
            continue;
        sig += name;
        sig += '=';
        sig += std::to_string(value);
        sig += '\n';
    }
    for (const auto &[name, value] : sc.stats().scalars()) {
        sig += name;
        sig += '=';
        sig += std::to_string(value);
        sig += '\n';
    }
    std::uint64_t th = 0x7261636b;
    for (const auto &e : sc.trace().events()) {
        th = hashCombine(th, static_cast<std::uint64_t>(e.type));
        th = hashCombine(th, static_cast<std::uint64_t>(e.vm));
        th = hashCombine(th, e.tick);
        th = hashCombine(th, e.arg0);
        th = hashCombine(th, e.arg1);
    }
    sig += "trace_hash=" + std::to_string(th);
    sig += "\npages_shared=" + std::to_string(sc.ksm().pagesShared());
    sig += "\npages_sharing=" + std::to_string(sc.ksm().pagesSharing());
    sig += '\n';
    return sig;
}

StormResult
measure(std::size_t vms, std::size_t arrivals, const MatrixPoint &p)
{
    core::Scenario sc(stormConfig(vms, p), hostSpecs(vms));
    sc.build();
    // No run(): the host is exactly as the boot storm left it — every
    // resident page cold, never visited. Trace the whole convergence
    // so the identity gate covers event streams, not just totals.
    sc.trace().enable();
    sc.ksm().setPagesToScan(100'000);

    StormResult r;
    const auto c0 = std::chrono::steady_clock::now();
    sc.ksm().runToQuiescence(64);
    const auto c1 = std::chrono::steady_clock::now();
    r.coldMs =
        std::chrono::duration<double, std::milli>(c1 - c0).count();
    r.coldSig = identitySignature(sc);

    // Migration arrivals: fresh guests land on the converged host and
    // bring a wall of never-scanned pages with them.
    const std::vector<workload::WorkloadSpec> fresh =
        hostSpecs(arrivals);
    const auto a0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < arrivals; ++i)
        sc.addVm(fresh[i]);
    sc.ksm().runToQuiescence(64);
    const auto a1 = std::chrono::steady_clock::now();
    r.arrivalMs =
        std::chrono::duration<double, std::milli>(a1 - a0).count();
    r.finalSig = identitySignature(sc);

    sc.hv().checkConsistency();
    r.pagesSharing = sc.ksm().pagesSharing();
    r.residentPages = sc.stats().get("host.resident_frames");
    r.batchKernelPages = sc.stats().get("ksm.batch_kernel_pages");
    r.batchFlushes = sc.stats().get("ksm.batch_flushes");
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const std::size_t vms =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 256;
    const std::size_t arrivals =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;

    const KernelBench kb = benchColdContentKernels();
    std::printf("BM_ColdContentKernels: scalar %.1f ns/page, batched "
                "%.1f ns/page — x%.2f\n\n",
                kb.scalarNsPerPage, kb.batchNsPerPage, kb.speedup);

    std::printf("Boot storm — %zu VMs cold on one %zu MiB host, then "
                "%zu migration arrivals\n\n",
                vms, vms * 640, arrivals);
    std::printf("%-6s %-8s %-7s %12s %12s %12s %12s\n", "batch",
                "threads", "shards", "cold ms", "arrival ms",
                "sharing pg", "kernel pg");
    std::printf("%s\n", std::string(76, '-').c_str());

    // The matrix: batch window on/off at every scan-thread /
    // commit-shard shape the scanner supports in this sweep. Index 0
    // is the all-serial unbatched baseline every signature must match.
    const std::vector<MatrixPoint> points = {
        {1, 1, 1},  {16, 1, 1}, {1, 4, 1},  {16, 4, 1},
        {1, 4, 4},  {16, 4, 4}, {1, 1, 4},  {16, 1, 4},
    };
    std::vector<StormResult> results(points.size());
    bool identical = true;
    for (std::size_t i = 0; i < points.size(); ++i) {
        results[i] = measure(vms, arrivals, points[i]);
        // The identity gate: a configuration that changed ANY
        // observable beyond the sizing counters invalidates the bench.
        if (i > 0 && (results[i].coldSig != results[0].coldSig ||
                      results[i].finalSig != results[0].finalSig)) {
            identical = false;
            std::fprintf(stderr,
                         "FAIL: registry/trace at batch=%u threads=%u "
                         "shards=%u diverged from the serial unbatched "
                         "baseline\n",
                         points[i].batch, points[i].threads,
                         points[i].shards);
            return 1;
        }
        std::printf("%-6u %-8u %-7u %12.0f %12.0f %12llu %12llu\n",
                    points[i].batch, points[i].threads,
                    points[i].shards, results[i].coldMs,
                    results[i].arrivalMs,
                    (unsigned long long)results[i].pagesSharing,
                    (unsigned long long)results[i].batchKernelPages);
        std::fflush(stdout);
    }

    // Headline ratios: serial pair isolates the kernel win; the
    // parallel pair shows it survives under the two-phase scan. The
    // serial cold pair is the CI-asserted figure, so re-measure it
    // best-of-3 (fresh host per rep) to keep scheduler noise on a
    // loaded runner from drowning the kernel signal.
    for (int rep = 0; rep < 2; ++rep)
        for (std::size_t i : {std::size_t{0}, std::size_t{1}}) {
            const StormResult r = measure(vms, arrivals, points[i]);
            if (r.coldSig != results[0].coldSig ||
                r.finalSig != results[0].finalSig) {
                std::fprintf(stderr, "FAIL: best-of rep diverged\n");
                return 1;
            }
            results[i].coldMs = std::min(results[i].coldMs, r.coldMs);
            results[i].arrivalMs =
                std::min(results[i].arrivalMs, r.arrivalMs);
        }
    const double coldSerial = results[0].coldMs / results[1].coldMs;
    const double coldParallel = results[4].coldMs / results[5].coldMs;
    const double arrivalSerial =
        results[0].arrivalMs / results[1].arrivalMs;
    std::printf("\ncold-convergence speedup: x%.2f serial, x%.2f at 4 "
                "threads / 4 shards; arrival x%.2f "
                "(byte-identical registries+traces: %s)\n",
                coldSerial, coldParallel, arrivalSerial,
                identical ? "yes" : "NO");

    bench::BenchJson json("bootstorm", "cold-path batch kernels");
    for (std::size_t i = 0; i < points.size(); ++i) {
        json.beginRow();
        json.field("batch_pages", points[i].batch);
        json.field("scan_threads", points[i].threads);
        json.field("commit_shards", points[i].shards);
        json.field("cold_converge_ms", results[i].coldMs);
        json.field("arrival_converge_ms", results[i].arrivalMs);
        json.field("pages_sharing", results[i].pagesSharing);
        json.field("resident_pages", results[i].residentPages);
        json.field("batch_kernel_pages", results[i].batchKernelPages);
        json.field("batch_flushes", results[i].batchFlushes);
        json.endRow();
    }
    json.summaryField("host_vms", static_cast<std::uint64_t>(vms));
    json.summaryField("arrival_vms",
                      static_cast<std::uint64_t>(arrivals));
    json.summaryField("scalar_kernel_ns_per_page", kb.scalarNsPerPage);
    json.summaryField("batch_kernel_ns_per_page", kb.batchNsPerPage);
    json.summaryField("cold_kernel_speedup", kb.speedup);
    json.summaryField("cold_batch_speedup", coldSerial);
    json.summaryField("cold_batch_speedup_parallel", coldParallel);
    json.summaryField("arrival_batch_speedup", arrivalSerial);
    json.summaryField("registry_identical",
                      static_cast<std::uint64_t>(identical ? 1 : 0));
    json.write();
    return identical ? 0 : 1;
}
