/**
 * @file
 * Component microbenchmarks (google-benchmark): the hot paths of the
 * simulator itself — EPT-translated writes, COW breaks, KSM scanning,
 * whole-memory collapse, GC cycles, and the forensics walk. These
 * bound how large a scenario the harness can run per wall-second.
 */

#include <benchmark/benchmark.h>

#include "analysis/accounting.hh"
#include "analysis/forensics.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "guest/guest_os.hh"
#include "hv/hypervisor.hh"
#include "jvm/java_heap.hh"
#include "ksm/ksm_scanner.hh"

using namespace jtps;

namespace
{

hv::HostConfig
host(Bytes ram = 2ULL * GiB)
{
    hv::HostConfig cfg;
    cfg.ramBytes = ram;
    cfg.reserveBytes = 0;
    return cfg;
}

void
BM_WriteWordResident(benchmark::State &state)
{
    StatSet stats;
    hv::KvmHypervisor hv(host(), stats);
    VmId vm = hv.createVm("vm", 64 * MiB, 0);
    for (Gfn g = 0; g < 1024; ++g)
        hv.writePage(vm, g, mem::PageData::filled(1, g));
    std::uint64_t i = 0;
    for (auto _ : state) {
        hv.writeWord(vm, i % 1024, i % 8, i);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WriteWordResident);

void
BM_DemandAllocWrite(benchmark::State &state)
{
    StatSet stats;
    hv::KvmHypervisor hv(host(8ULL * GiB), stats);
    VmId vm = hv.createVm("vm", 7ULL * GiB, 0);
    Gfn g = 0;
    for (auto _ : state) {
        hv.writePage(vm, g, mem::PageData::filled(2, g));
        ++g;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DemandAllocWrite);

void
BM_CowBreak(benchmark::State &state)
{
    StatSet stats;
    hv::KvmHypervisor hv(host(), stats);
    VmId a = hv.createVm("a", 256 * MiB, 0);
    VmId b = hv.createVm("b", 256 * MiB, 0);
    constexpr Gfn n = 16384;
    for (Gfn g = 0; g < n; ++g) {
        hv.writePage(a, g, mem::PageData::filled(3, g));
        hv.writePage(b, g, mem::PageData::filled(3, g));
    }
    hv.collapseIdenticalPages();
    Gfn g = 0;
    for (auto _ : state) {
        if (g >= n) {
            // Re-establish sharing once the pool is exhausted (not
            // timed precisely, but amortized over many iterations).
            state.PauseTiming();
            hv.collapseIdenticalPages();
            g = 0;
            state.ResumeTiming();
        }
        hv.writeWord(b, g++, 0, 42);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CowBreak);

void
BM_KsmScanPass(benchmark::State &state)
{
    StatSet stats;
    hv::KvmHypervisor hv(host(), stats);
    VmId a = hv.createVm("a", 256 * MiB, 0);
    VmId b = hv.createVm("b", 256 * MiB, 0);
    const Gfn n = state.range(0);
    for (Gfn g = 0; g < n; ++g) {
        hv.writePage(a, g, mem::PageData::filled(4, g));
        hv.writePage(b, g, mem::PageData::filled(4, g));
    }
    ksm::KsmConfig cfg;
    cfg.pagesToScan = 1u << 30; // one batch = one pass
    ksm::KsmScanner scanner(hv, cfg, stats);
    for (auto _ : state)
        benchmark::DoNotOptimize(scanner.scanBatch());
    state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_KsmScanPass)->Arg(4096)->Arg(32768);

void
BM_KsmScanPassTraceWired(benchmark::State &state)
{
    // BM_KsmScanPass with a TraceBuffer wired into the hypervisor but
    // left disabled — the cost of the tracing hooks when off. Guarded
    // to stay within noise (<2%) of BM_KsmScanPass.
    StatSet stats;
    hv::KvmHypervisor hv(host(), stats);
    TraceBuffer trace;
    hv.setTrace(&trace);
    VmId a = hv.createVm("a", 256 * MiB, 0);
    VmId b = hv.createVm("b", 256 * MiB, 0);
    const Gfn n = state.range(0);
    for (Gfn g = 0; g < n; ++g) {
        hv.writePage(a, g, mem::PageData::filled(4, g));
        hv.writePage(b, g, mem::PageData::filled(4, g));
    }
    ksm::KsmConfig cfg;
    cfg.pagesToScan = 1u << 30; // one batch = one pass
    ksm::KsmScanner scanner(hv, cfg, stats);
    for (auto _ : state)
        benchmark::DoNotOptimize(scanner.scanBatch());
    state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_KsmScanPassTraceWired)->Arg(4096)->Arg(32768);

void
BM_TraceRecordDisabled(benchmark::State &state)
{
    // A disabled TraceBuffer::record() must cost one predictable
    // branch: this is the per-event price every hook pays when
    // tracing is off.
    TraceBuffer trace;
    std::uint64_t i = 0;
    for (auto _ : state) {
        trace.record(TraceEventType::CowBreak, 0, i, i);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecordDisabled);

void
BM_TraceRecordEnabled(benchmark::State &state)
{
    // The enabled path, recording into a pre-reserved buffer.
    TraceBuffer trace;
    trace.enable(1u << 20);
    std::uint64_t i = 0;
    for (auto _ : state) {
        if (trace.events().size() >= (1u << 20) - 1) {
            state.PauseTiming();
            trace.clear();
            state.ResumeTiming();
        }
        trace.record(TraceEventType::CowBreak, 0, i, i);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecordEnabled);

void
BM_KsmScanDistinctPages(benchmark::State &state)
{
    // Scan throughput over calm, all-distinct pages: every visit is a
    // stable-tree miss followed by an unstable-tree insert, i.e. the
    // tree cost of a warm-up pass before any sharing exists.
    StatSet stats;
    hv::KvmHypervisor hv(host(), stats);
    VmId a = hv.createVm("a", 256 * MiB, 0);
    VmId b = hv.createVm("b", 256 * MiB, 0);
    const Gfn n = state.range(0);
    for (Gfn g = 0; g < n; ++g) {
        hv.writePage(a, g, mem::PageData::filled(6, g));
        hv.writePage(b, g, mem::PageData::filled(7, g));
    }
    ksm::KsmConfig cfg;
    cfg.pagesToScan = 1u << 30; // one batch = one pass
    ksm::KsmScanner scanner(hv, cfg, stats);
    scanner.scanBatch(); // pass 1: record checksums (nothing calm yet)
    for (auto _ : state)
        benchmark::DoNotOptimize(scanner.scanBatch());
    state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_KsmScanDistinctPages)->Arg(4096)->Arg(32768);

void
BM_KsmScanStableMiss(benchmark::State &state)
{
    // Scan throughput with a large populated stable tree: VMs a and b
    // merge into n stable frames; VM c's n distinct pages then probe
    // that tree (miss) and rebuild the unstable tree every pass.
    StatSet stats;
    hv::KvmHypervisor hv(host(), stats);
    VmId a = hv.createVm("a", 256 * MiB, 0);
    VmId b = hv.createVm("b", 256 * MiB, 0);
    VmId c = hv.createVm("c", 256 * MiB, 0);
    const Gfn n = state.range(0);
    for (Gfn g = 0; g < n; ++g) {
        hv.writePage(a, g, mem::PageData::filled(8, g));
        hv.writePage(b, g, mem::PageData::filled(8, g));
        hv.writePage(c, g, mem::PageData::filled(9, g));
    }
    ksm::KsmConfig cfg;
    cfg.pagesToScan = 1u << 30; // one batch = one pass
    ksm::KsmScanner scanner(hv, cfg, stats);
    scanner.runToQuiescence();
    for (auto _ : state)
        benchmark::DoNotOptimize(scanner.scanBatch());
    state.SetItemsProcessed(state.iterations() * 3 * n);
}
BENCHMARK(BM_KsmScanStableMiss)->Arg(4096)->Arg(32768);

void
BM_PagesSharedSharing(benchmark::State &state)
{
    // The sharing monitor samples pagesShared()/pagesSharing() on a
    // fixed period; with per-call frame walks this scales with host
    // size instead of O(1).
    StatSet stats;
    hv::KvmHypervisor hv(host(), stats);
    VmId a = hv.createVm("a", 256 * MiB, 0);
    VmId b = hv.createVm("b", 256 * MiB, 0);
    for (Gfn g = 0; g < 32768; ++g) {
        hv.writePage(a, g, mem::PageData::filled(10, g));
        hv.writePage(b, g, mem::PageData::filled(10, g));
    }
    ksm::KsmConfig cfg;
    cfg.pagesToScan = 1u << 30;
    ksm::KsmScanner scanner(hv, cfg, stats);
    scanner.runToQuiescence();
    for (auto _ : state) {
        benchmark::DoNotOptimize(scanner.pagesShared());
        benchmark::DoNotOptimize(scanner.pagesSharing());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PagesSharedSharing);

void
BM_CollapseIdenticalPages(benchmark::State &state)
{
    StatSet stats;
    for (auto _ : state) {
        state.PauseTiming();
        StatSet s2;
        hv::PowerVmHypervisor hv(host(), s2);
        VmId a = hv.createVm("a", 128 * MiB);
        VmId b = hv.createVm("b", 128 * MiB);
        for (Gfn g = 0; g < 16384; ++g) {
            hv.writePage(a, g, mem::PageData::filled(5, g));
            hv.writePage(b, g, mem::PageData::filled(5, g));
        }
        state.ResumeTiming();
        benchmark::DoNotOptimize(hv.runTps());
    }
    state.SetItemsProcessed(state.iterations() * 32768);
}
BENCHMARK(BM_CollapseIdenticalPages);

void
BM_GcCycle(benchmark::State &state)
{
    StatSet stats;
    hv::KvmHypervisor hv(host(), stats);
    VmId vm = hv.createVm("vm", 256 * MiB, 0);
    guest::GuestOs os(hv, vm, "vm", 1);
    jvm::GcConfig gc;
    gc.heapBytes = 64 * MiB;
    jvm::JavaHeap heap(os, os.spawn("j", true), gc, 1);
    heap.init();
    for (auto _ : state)
        heap.allocate(64 * MiB); // roughly one full GC cycle's worth
    state.SetBytesProcessed(state.iterations() * 64 * MiB);
}
BENCHMARK(BM_GcCycle);

void
BM_ForensicsWalkAndAccount(benchmark::State &state)
{
    StatSet stats;
    hv::KvmHypervisor hv(host(), stats);
    VmId vm = hv.createVm("vm", 256 * MiB, 0);
    guest::GuestOs os(hv, vm, "vm", 1);
    guest::KernelConfig k;
    k.textBytes = 8 * MiB;
    k.dataBytes = 4 * MiB;
    k.slabBytes = 4 * MiB;
    k.sharedBootCacheBytes = 16 * MiB;
    k.privateBootCacheBytes = 8 * MiB;
    os.bootKernel(k);
    std::vector<const guest::GuestOs *> guests = {&os};
    for (auto _ : state) {
        analysis::Snapshot snap = analysis::captureSnapshot(hv, guests);
        analysis::OwnerAccounting acct(snap);
        benchmark::DoNotOptimize(acct.attributedBytes());
    }
    state.SetItemsProcessed(state.iterations() *
                            hv.residentFrames());
}
BENCHMARK(BM_ForensicsWalkAndAccount);

} // namespace

BENCHMARK_MAIN();
