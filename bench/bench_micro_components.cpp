/**
 * @file
 * Component microbenchmarks (google-benchmark): the hot paths of the
 * simulator itself — EPT-translated writes, COW breaks, KSM scanning,
 * whole-memory collapse, GC cycles, and the forensics walk. These
 * bound how large a scenario the harness can run per wall-second.
 */

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/accounting.hh"
#include "analysis/forensics.hh"
#include "base/stats.hh"
#include "base/trace.hh"
#include "bench/bench_common.hh"
#include "bench/bench_json.hh"
#include "core/placement.hh"
#include "guest/guest_os.hh"
#include "hv/hypervisor.hh"
#include "jvm/java_heap.hh"
#include "ksm/ksm_scanner.hh"
#include "mem/frame_table.hh"
#include "sim/event_queue.hh"

using namespace jtps;

namespace
{

hv::HostConfig
host(Bytes ram = 2ULL * GiB)
{
    hv::HostConfig cfg;
    cfg.ramBytes = ram;
    cfg.reserveBytes = 0;
    return cfg;
}

void
BM_WriteWordResident(benchmark::State &state)
{
    StatSet stats;
    hv::KvmHypervisor hv(host(), stats);
    VmId vm = hv.createVm("vm", 64 * MiB, 0);
    for (Gfn g = 0; g < 1024; ++g)
        hv.writePage(vm, g, mem::PageData::filled(1, g));
    std::uint64_t i = 0;
    for (auto _ : state) {
        hv.writeWord(vm, i % 1024, i % 8, i);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WriteWordResident);

void
BM_DemandAllocWrite(benchmark::State &state)
{
    StatSet stats;
    hv::KvmHypervisor hv(host(8ULL * GiB), stats);
    VmId vm = hv.createVm("vm", 7ULL * GiB, 0);
    Gfn g = 0;
    for (auto _ : state) {
        hv.writePage(vm, g, mem::PageData::filled(2, g));
        ++g;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DemandAllocWrite);

void
BM_CowBreak(benchmark::State &state)
{
    StatSet stats;
    hv::KvmHypervisor hv(host(), stats);
    VmId a = hv.createVm("a", 256 * MiB, 0);
    VmId b = hv.createVm("b", 256 * MiB, 0);
    constexpr Gfn n = 16384;
    for (Gfn g = 0; g < n; ++g) {
        hv.writePage(a, g, mem::PageData::filled(3, g));
        hv.writePage(b, g, mem::PageData::filled(3, g));
    }
    hv.collapseIdenticalPages();
    Gfn g = 0;
    for (auto _ : state) {
        if (g >= n) {
            // Re-establish sharing once the pool is exhausted (not
            // timed precisely, but amortized over many iterations).
            state.PauseTiming();
            hv.collapseIdenticalPages();
            g = 0;
            state.ResumeTiming();
        }
        hv.writeWord(b, g++, 0, 42);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CowBreak);

void
BM_KsmScanPass(benchmark::State &state)
{
    StatSet stats;
    hv::KvmHypervisor hv(host(), stats);
    VmId a = hv.createVm("a", 256 * MiB, 0);
    VmId b = hv.createVm("b", 256 * MiB, 0);
    const Gfn n = state.range(0);
    for (Gfn g = 0; g < n; ++g) {
        hv.writePage(a, g, mem::PageData::filled(4, g));
        hv.writePage(b, g, mem::PageData::filled(4, g));
    }
    ksm::KsmConfig cfg;
    cfg.pagesToScan = 1u << 30; // one batch = one pass
    ksm::KsmScanner scanner(hv, cfg, stats);
    for (auto _ : state)
        benchmark::DoNotOptimize(scanner.scanBatch());
    state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_KsmScanPass)->Arg(4096)->Arg(32768);

void
BM_KsmScanPassTraceWired(benchmark::State &state)
{
    // BM_KsmScanPass with a TraceBuffer wired into the hypervisor but
    // left disabled — the cost of the tracing hooks when off. Guarded
    // to stay within noise (<2%) of BM_KsmScanPass.
    StatSet stats;
    hv::KvmHypervisor hv(host(), stats);
    TraceBuffer trace;
    hv.setTrace(&trace);
    VmId a = hv.createVm("a", 256 * MiB, 0);
    VmId b = hv.createVm("b", 256 * MiB, 0);
    const Gfn n = state.range(0);
    for (Gfn g = 0; g < n; ++g) {
        hv.writePage(a, g, mem::PageData::filled(4, g));
        hv.writePage(b, g, mem::PageData::filled(4, g));
    }
    ksm::KsmConfig cfg;
    cfg.pagesToScan = 1u << 30; // one batch = one pass
    ksm::KsmScanner scanner(hv, cfg, stats);
    for (auto _ : state)
        benchmark::DoNotOptimize(scanner.scanBatch());
    state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_KsmScanPassTraceWired)->Arg(4096)->Arg(32768);

void
BM_TraceRecordDisabled(benchmark::State &state)
{
    // A disabled TraceBuffer::record() must cost one predictable
    // branch: this is the per-event price every hook pays when
    // tracing is off.
    TraceBuffer trace;
    std::uint64_t i = 0;
    for (auto _ : state) {
        trace.record(TraceEventType::CowBreak, 0, i, i);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecordDisabled);

void
BM_TraceRecordEnabled(benchmark::State &state)
{
    // The enabled path, recording into a pre-reserved buffer.
    TraceBuffer trace;
    trace.enable(1u << 20);
    std::uint64_t i = 0;
    for (auto _ : state) {
        if (trace.events().size() >= (1u << 20) - 1) {
            state.PauseTiming();
            trace.clear();
            state.ResumeTiming();
        }
        trace.record(TraceEventType::CowBreak, 0, i, i);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecordEnabled);

void
BM_KsmScanDistinctPages(benchmark::State &state)
{
    // Scan throughput over calm, all-distinct pages: every visit is a
    // stable-tree miss followed by an unstable-tree insert, i.e. the
    // tree cost of a warm-up pass before any sharing exists.
    StatSet stats;
    hv::KvmHypervisor hv(host(), stats);
    VmId a = hv.createVm("a", 256 * MiB, 0);
    VmId b = hv.createVm("b", 256 * MiB, 0);
    const Gfn n = state.range(0);
    for (Gfn g = 0; g < n; ++g) {
        hv.writePage(a, g, mem::PageData::filled(6, g));
        hv.writePage(b, g, mem::PageData::filled(7, g));
    }
    ksm::KsmConfig cfg;
    cfg.pagesToScan = 1u << 30; // one batch = one pass
    ksm::KsmScanner scanner(hv, cfg, stats);
    scanner.scanBatch(); // pass 1: record checksums (nothing calm yet)
    for (auto _ : state)
        benchmark::DoNotOptimize(scanner.scanBatch());
    state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_KsmScanDistinctPages)->Arg(4096)->Arg(32768);

void
BM_KsmScanStableMiss(benchmark::State &state)
{
    // Scan throughput with a large populated stable tree: VMs a and b
    // merge into n stable frames; VM c's n distinct pages then probe
    // that tree (miss) and rebuild the unstable tree every pass.
    StatSet stats;
    hv::KvmHypervisor hv(host(), stats);
    VmId a = hv.createVm("a", 256 * MiB, 0);
    VmId b = hv.createVm("b", 256 * MiB, 0);
    VmId c = hv.createVm("c", 256 * MiB, 0);
    const Gfn n = state.range(0);
    for (Gfn g = 0; g < n; ++g) {
        hv.writePage(a, g, mem::PageData::filled(8, g));
        hv.writePage(b, g, mem::PageData::filled(8, g));
        hv.writePage(c, g, mem::PageData::filled(9, g));
    }
    ksm::KsmConfig cfg;
    cfg.pagesToScan = 1u << 30; // one batch = one pass
    ksm::KsmScanner scanner(hv, cfg, stats);
    scanner.runToQuiescence();
    for (auto _ : state)
        benchmark::DoNotOptimize(scanner.scanBatch());
    state.SetItemsProcessed(state.iterations() * 3 * n);
}
BENCHMARK(BM_KsmScanStableMiss)->Arg(4096)->Arg(32768);

void
BM_PagesSharedSharing(benchmark::State &state)
{
    // The sharing monitor samples pagesShared()/pagesSharing() on a
    // fixed period; with per-call frame walks this scales with host
    // size instead of O(1).
    StatSet stats;
    hv::KvmHypervisor hv(host(), stats);
    VmId a = hv.createVm("a", 256 * MiB, 0);
    VmId b = hv.createVm("b", 256 * MiB, 0);
    for (Gfn g = 0; g < 32768; ++g) {
        hv.writePage(a, g, mem::PageData::filled(10, g));
        hv.writePage(b, g, mem::PageData::filled(10, g));
    }
    ksm::KsmConfig cfg;
    cfg.pagesToScan = 1u << 30;
    ksm::KsmScanner scanner(hv, cfg, stats);
    scanner.runToQuiescence();
    for (auto _ : state) {
        benchmark::DoNotOptimize(scanner.pagesShared());
        benchmark::DoNotOptimize(scanner.pagesSharing());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PagesSharedSharing);

void
BM_CollapseIdenticalPages(benchmark::State &state)
{
    StatSet stats;
    for (auto _ : state) {
        state.PauseTiming();
        StatSet s2;
        hv::PowerVmHypervisor hv(host(), s2);
        VmId a = hv.createVm("a", 128 * MiB);
        VmId b = hv.createVm("b", 128 * MiB);
        for (Gfn g = 0; g < 16384; ++g) {
            hv.writePage(a, g, mem::PageData::filled(5, g));
            hv.writePage(b, g, mem::PageData::filled(5, g));
        }
        state.ResumeTiming();
        benchmark::DoNotOptimize(hv.runTps());
    }
    state.SetItemsProcessed(state.iterations() * 32768);
}
BENCHMARK(BM_CollapseIdenticalPages);

void
BM_EventQueueChurn(benchmark::State &state)
{
    // The simulator's standing load on the event queue: every
    // component is a periodic event that reschedules itself each wake,
    // so a run is almost pure pop-min + push churn at a roughly stable
    // queue size — the case the binary heap replaces the old std::map
    // for. Mixed periods keep the heap order genuinely shuffling.
    const int n_events = static_cast<int>(state.range(0));
    sim::EventQueue q;
    std::uint64_t fired = 0;
    for (int i = 0; i < n_events; ++i) {
        const Tick period = 1 + (i % 7) + (i % 3);
        q.schedulePeriodic(period, [&fired]() {
            ++fired;
            return true;
        });
    }
    Tick until = 0;
    for (auto _ : state) {
        until += 16;
        q.runUntil(until);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(fired));
    q.clear();
}
BENCHMARK(BM_EventQueueChurn)->Arg(16)->Arg(256);

void
BM_GcCycle(benchmark::State &state)
{
    StatSet stats;
    hv::KvmHypervisor hv(host(), stats);
    VmId vm = hv.createVm("vm", 256 * MiB, 0);
    guest::GuestOs os(hv, vm, "vm", 1);
    jvm::GcConfig gc;
    gc.heapBytes = 64 * MiB;
    jvm::JavaHeap heap(os, os.spawn("j", true), gc, 1);
    heap.init();
    for (auto _ : state)
        heap.allocate(64 * MiB); // roughly one full GC cycle's worth
    state.SetBytesProcessed(state.iterations() * 64 * MiB);
}
BENCHMARK(BM_GcCycle);

void
BM_ForEachResidentSparse(benchmark::State &state)
{
    // A large, nearly-empty frame table: 1M slots with every 257th
    // frame resident (a ballooned-down or freshly-booted host looks
    // like this). The word-scanning bitmap iterator must pay per
    // resident frame, not per slot.
    constexpr std::uint64_t n = 1u << 20;
    mem::FrameTable table(n);
    std::vector<Hfn> hfns(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        hfns[i] = table.alloc(mem::Mapping{0, static_cast<Gfn>(i)},
                              mem::PageData::filled(1, i));
    }
    for (std::uint64_t i = 0; i < n; ++i) {
        if (i % 257 != 0) {
            table.removeMapping(hfns[i],
                                mem::Mapping{0, static_cast<Gfn>(i)});
        }
    }
    for (auto _ : state) {
        std::uint64_t sum = 0;
        table.forEachResident(
            [&sum](Hfn, const mem::Frame &f) { sum += f.refcount; });
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ForEachResidentSparse);

void
BM_ForensicsWalkAndAccount(benchmark::State &state)
{
    StatSet stats;
    hv::KvmHypervisor hv(host(), stats);
    VmId vm = hv.createVm("vm", 256 * MiB, 0);
    guest::GuestOs os(hv, vm, "vm", 1);
    guest::KernelConfig k;
    k.textBytes = 8 * MiB;
    k.dataBytes = 4 * MiB;
    k.slabBytes = 4 * MiB;
    k.sharedBootCacheBytes = 16 * MiB;
    k.privateBootCacheBytes = 8 * MiB;
    os.bootKernel(k);
    std::vector<const guest::GuestOs *> guests = {&os};
    for (auto _ : state) {
        analysis::Snapshot snap = analysis::captureSnapshot(hv, guests);
        analysis::OwnerAccounting acct(snap);
        benchmark::DoNotOptimize(acct.attributedBytes());
    }
    state.SetItemsProcessed(state.iterations() *
                            hv.residentFrames());
}
BENCHMARK(BM_ForensicsWalkAndAccount);

// ---------------------------------------------------------------------
// Converged-scenario benchmarks (ISSUE 3): steady-state cost of one
// full KSM scan pass with and without incremental (write-generation)
// skipping, and of a forensics snapshot at several thread counts. One
// DayTrader x 4 scenario is built once, run to KSM quiescence, and
// shared read-only by every benchmark below.
// ---------------------------------------------------------------------

core::Scenario &
convergedScenario()
{
    static std::unique_ptr<core::Scenario> scenario = []() {
        setVerbose(false);
        core::ScenarioConfig cfg = bench::paperConfig(false);
        // Shorter phases than the figure benches: the benchmarks below
        // only need a converged steady-state memory image, not the
        // paper's measurement protocol.
        cfg.warmupMs = 20'000;
        cfg.steadyMs = 10'000;
        std::vector<workload::WorkloadSpec> vms(
            4, workload::dayTraderIntel());
        auto s = std::make_unique<core::Scenario>(cfg, vms);
        s->build();
        s->run();
        // Settle: with the drivers stopped the memory image is static,
        // so running the scenario's scanner to quiescence merges every
        // remaining duplicate. The timed passes below then do pure
        // steady-state revisits (no merges mutating the shared image).
        s->ksm().runToQuiescence();
        return s;
    }();
    return *scenario;
}

void
convergedScanPass(benchmark::State &state, bool incremental,
                  unsigned scan_threads = 1)
{
    core::Scenario &scenario = convergedScenario();
    StatSet stats;
    ksm::KsmConfig cfg;
    cfg.pagesToScan = 1u << 30; // one batch = one pass
    cfg.incrementalScan = incremental;
    cfg.scanThreads = scan_threads;
    ksm::KsmScanner scanner(scenario.hv(), cfg, stats);
    scanner.scanBatch(); // pass 1: record checksums/generations
    scanner.scanBatch(); // pass 2: calm now; digests + trees built
    std::uint64_t pages = 0;
    for (auto _ : state)
        pages += scanner.scanBatch();
    state.SetItemsProcessed(static_cast<std::int64_t>(pages));
}

void
BM_ConvergedScanPassReference(benchmark::State &state)
{
    convergedScanPass(state, /*incremental=*/false);
}
BENCHMARK(BM_ConvergedScanPassReference);

void
BM_ConvergedScanPassIncremental(benchmark::State &state)
{
    convergedScanPass(state, /*incremental=*/true);
}
BENCHMARK(BM_ConvergedScanPassIncremental);

void
BM_ConvergedScanPassParallel(benchmark::State &state)
{
    // The two-phase classify/commit scan at 1/2/4 classify threads
    // over the same converged image. Arg(1) takes the serial path
    // (scanThreads <= 1), so the parallel rows read directly against
    // BM_ConvergedScanPassIncremental. Results are byte-identical at
    // every width (ParallelScanEquivalenceFuzz); only the wall clock
    // may differ, and on a single-core host the sharded rows measure
    // pool handoff overhead rather than speedup.
    convergedScanPass(state, /*incremental=*/true,
                      static_cast<unsigned>(state.range(0)));
}
BENCHMARK(BM_ConvergedScanPassParallel)->Arg(1)->Arg(2)->Arg(4);

void
BM_ConvergedForensicsSnapshot(benchmark::State &state)
{
    core::Scenario &scenario = convergedScenario();
    const unsigned threads = static_cast<unsigned>(state.range(0));
    std::vector<const guest::GuestOs *> guests;
    for (std::size_t i = 0; i < scenario.vmCount(); ++i)
        guests.push_back(&scenario.guest(i));
    for (auto _ : state) {
        analysis::Snapshot snap =
            analysis::captureSnapshot(scenario.hv(), guests, threads);
        analysis::OwnerAccounting acct(snap, threads);
        benchmark::DoNotOptimize(acct.attributedBytes());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(scenario.hv().residentFrames()));
}
BENCHMARK(BM_ConvergedForensicsSnapshot)->Arg(1)->Arg(2)->Arg(4);

// ---------------------------------------------------------------------
// Guest tick batches: one full epoch tick of a 16-VM DayTrader host —
// the per-VM stage phase (guest-local mutator work into write-intent
// logs) fanned out at 1/2/4 threads, with the serial commit replay in
// canonical VM order. A fresh scenario is built per width with the
// same seed and the iteration count is pinned, so every width times
// the byte-identical simulated epoch range — per-epoch cost varies
// with sim phase (GC and KSM cycles), and letting the framework pick
// iteration counts would time different epochs at different widths.
// ---------------------------------------------------------------------

core::Scenario &
guestTickScenario(unsigned width)
{
    static std::unique_ptr<core::Scenario> scenario;
    static unsigned current_width = 0;
    if (!scenario || current_width != width) {
        scenario.reset(); // one live 16-VM host at a time
        setVerbose(false);
        core::ScenarioConfig cfg;
        cfg.host.ramBytes = 40ULL * GiB; // never host-pages
        cfg.guestThreads = width;
        std::vector<workload::WorkloadSpec> vms(
            16, workload::dayTraderIntel());
        // Double the guests' memory so the free-frame headroom stays
        // far above the per-epoch demand bound: every timed epoch
        // stages (sim.stage_fallbacks stays 0) and the bench isolates
        // the stage/commit split itself.
        for (auto &vm : vms)
            vm.guestMemBytes = 2ULL * GiB;
        scenario = std::make_unique<core::Scenario>(cfg, vms);
        scenario->build();
        // Warm up past lazy class loading, JIT compilation and the
        // first-touch allocation transient so the timed epochs do
        // steady-state request work.
        scenario->runFor(25 * cfg.epochMs);
        current_width = width;
    }
    return *scenario;
}

void
guestTickBatch(benchmark::State &state, unsigned width)
{
    core::Scenario &scenario = guestTickScenario(width);
    const Tick epoch_ms = core::ScenarioConfig{}.epochMs;
    const std::uint64_t fallbacks_before =
        scenario.stats().get("sim.stage_fallbacks");
    for (auto _ : state)
        scenario.runFor(epoch_ms);
    if (scenario.stats().get("sim.stage_fallbacks") != fallbacks_before)
        state.SkipWithError("stage fallbacks during timed epochs");
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16);
}

void
BM_GuestTickBatchSerial(benchmark::State &state)
{
    guestTickBatch(state, 1);
}
BENCHMARK(BM_GuestTickBatchSerial)->Iterations(32);

void
BM_GuestTickBatchParallel2(benchmark::State &state)
{
    guestTickBatch(state, 2);
}
BENCHMARK(BM_GuestTickBatchParallel2)->Iterations(32);

void
BM_GuestTickBatchParallel4(benchmark::State &state)
{
    guestTickBatch(state, 4);
}
BENCHMARK(BM_GuestTickBatchParallel4)->Iterations(32);

// ---------------------------------------------------------------------
// PML dirty-log scanning (ISSUE 7): a 1M-page host converged under
// KSM, with 1% of the pages dirtied between passes. The log-driven
// pass drains the per-VM PML rings and visits only the dirty set; the
// generation-walk reference iterates all 1M EPT entries to find the
// same 1% (both then pay the identical re-checksum cost on the dirty
// pages, so the gap below is pure walk overhead). A pinned iteration
// count keeps every variant timing the same dirty/visit schedule.
// ---------------------------------------------------------------------

constexpr Gfn pmlScanPages = 1u << 20;           // 1M guest pages
constexpr Gfn pmlScanDirty = pmlScanPages / 100; // 1% dirtied per pass
constexpr std::uint32_t pmlScanRing = 16384;     // > dirty set: no overflow

void
pmlConvergedDirtyPass(benchmark::State &state, std::uint32_t ring_slots,
                      unsigned scan_threads)
{
    StatSet stats;
    hv::HostConfig hc = host(6ULL * GiB);
    hc.pmlRingSlots = ring_slots;
    hv::KvmHypervisor hv(hc, stats);
    VmId vm = hv.createVm("vm", Bytes(pmlScanPages) * pageSize, 0);
    for (Gfn g = 0; g < pmlScanPages; ++g)
        hv.writePage(vm, g, mem::PageData::filled(11, g));
    ksm::KsmConfig cfg;
    cfg.pagesToScan = 1u << 30; // one batch = one pass
    cfg.incrementalScan = true;
    cfg.usePml = ring_slots > 0;
    cfg.scanThreads = scan_threads;
    ksm::KsmScanner scanner(hv, cfg, stats);
    // Pass 1 checksums every page (the boot writes overflowed the
    // ring, so the PML side walks it too); pass 2 finds the image
    // calm and records digests; pass 3 is the first steady-state
    // pass of each mode's own kind.
    scanner.scanBatch();
    scanner.scanBatch();
    scanner.scanBatch();
    std::uint64_t salt = pmlScanPages;
    constexpr Gfn stride = pmlScanPages / pmlScanDirty;
    for (auto _ : state) {
        state.PauseTiming();
        for (Gfn i = 0; i < pmlScanDirty; ++i)
            hv.writeWord(vm, i * stride, i % 8, ++salt);
        state.ResumeTiming();
        benchmark::DoNotOptimize(scanner.scanBatch());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(pmlScanDirty));
}

void
BM_PmlScanPassWalkReference(benchmark::State &state)
{
    pmlConvergedDirtyPass(state, /*ring_slots=*/0, /*scan_threads=*/1);
}
BENCHMARK(BM_PmlScanPassWalkReference)->Iterations(16);

void
BM_PmlScanPass1(benchmark::State &state)
{
    pmlConvergedDirtyPass(state, pmlScanRing, 1);
}
BENCHMARK(BM_PmlScanPass1)->Iterations(16);

void
BM_PmlScanPass2(benchmark::State &state)
{
    pmlConvergedDirtyPass(state, pmlScanRing, 2);
}
BENCHMARK(BM_PmlScanPass2)->Iterations(16);

void
BM_PmlScanPass4(benchmark::State &state)
{
    pmlConvergedDirtyPass(state, pmlScanRing, 4);
}
BENCHMARK(BM_PmlScanPass4)->Iterations(16);

void
BM_AdaptiveBalloon(benchmark::State &state)
{
    // One control interval of the adaptive balloon stack over four
    // guests: a window of dirty traffic into the PML rings, then one
    // estimator sample and one governor step (the per-interval cost
    // the ksmtuned-style daemon adds to a run).
    StatSet stats;
    hv::HostConfig hc = host();
    hc.pmlRingSlots = 4096;
    hv::KvmHypervisor hv(hc, stats);
    std::vector<VmId> vms;
    std::vector<std::unique_ptr<guest::GuestOs>> owned;
    std::vector<guest::GuestOs *> guests;
    for (int i = 0; i < 4; ++i) {
        const std::string name = "vm" + std::to_string(i);
        const VmId vm = hv.createVm(name, 64 * MiB, 0);
        auto os = std::make_unique<guest::GuestOs>(hv, vm, name, 1);
        guest::KernelConfig k;
        k.textBytes = 1 * MiB;
        k.dataBytes = 1 * MiB;
        k.slabBytes = 1 * MiB;
        k.sharedBootCacheBytes = 2 * MiB;
        k.privateBootCacheBytes = 2 * MiB;
        os->bootKernel(k);
        vms.push_back(vm);
        guests.push_back(os.get());
        owned.push_back(std::move(os));
    }
    analysis::WssConfig wcfg;
    wcfg.drainRings = true; // no log-driven scanner shares the rings
    analysis::WssEstimator wss(hv, wcfg, stats);
    core::BalloonGovernorConfig bcfg;
    bcfg.slackPages = 1024;
    core::BalloonGovernor governor(guests, wss, bcfg, stats);
    std::uint64_t w = 0;
    for (auto _ : state) {
        // Dirty a 512-page working set across the guests (resident
        // kernel pages, never balloon-reclaimable), then run one
        // sample + step interval.
        for (int i = 0; i < 512; ++i) {
            ++w;
            hv.writeWord(vms[static_cast<std::size_t>(i) % 4],
                         8 + (w % 128), w % 8, w);
        }
        wss.sample();
        governor.step();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdaptiveBalloon);

void
BM_PlacementPlan(benchmark::State &state)
{
    // Greedy sharing-aware packing of a fleet (range(0) mixed VM specs
    // into 16-slot hosts). The cluster layer plans whole datacenters
    // with this, so it must stay usable at 256+ VMs — fingerprints are
    // sorted flat vectors and every candidate gain is one merge walk
    // against the host's tag table instead of two from-scratch host
    // estimates.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const workload::WorkloadSpec cycle[] = {
        workload::dayTraderIntel(), workload::specjEnterprise2010(),
        workload::tpcwJava(), workload::tuscanyBigbank()};
    std::vector<workload::WorkloadSpec> specs;
    specs.reserve(n);
    for (std::size_t l = 0; l < n; ++l)
        specs.push_back(cycle[l % 4]);
    for (auto _ : state) {
        auto placement =
            core::PlacementPlanner::plan(specs, 16, true);
        benchmark::DoNotOptimize(placement);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PlacementPlan)->Arg(64)->Arg(256);

/**
 * Console reporter that additionally captures per-benchmark adjusted
 * real time, so main() can emit BENCH_micro_components.json (and the
 * incremental-scan / parallel-forensics speedups) via JTPS_BENCH_JSON.
 */
class CapturingReporter : public benchmark::ConsoleReporter
{
  public:
    struct Row
    {
        double realTimeNs = 0.0;
        std::int64_t iterations = 0;
    };

    void
    ReportRuns(const std::vector<Run> &reports) override
    {
        for (const Run &run : reports) {
            Row row;
            row.realTimeNs = run.GetAdjustedRealTime();
            row.iterations = static_cast<std::int64_t>(run.iterations);
            rows_[run.benchmark_name()] = row;
        }
        ConsoleReporter::ReportRuns(reports);
    }

    double
    realTimeNs(const std::string &name) const
    {
        auto it = rows_.find(name);
        return it == rows_.end() ? 0.0 : it->second.realTimeNs;
    }

    const std::map<std::string, Row> &rows() const { return rows_; }

  private:
    std::map<std::string, Row> rows_;
};

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    CapturingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    bench::BenchJson json("micro_components", "component micro");
    for (const auto &[name, row] : reporter.rows()) {
        json.beginRow();
        json.field("name", name);
        json.field("real_time_ns", row.realTimeNs);
        json.field("iterations", row.iterations);
        json.endRow();
    }
    const double scan_ref =
        reporter.realTimeNs("BM_ConvergedScanPassReference");
    const double scan_inc =
        reporter.realTimeNs("BM_ConvergedScanPassIncremental");
    if (scan_ref > 0 && scan_inc > 0) {
        json.summaryField("converged_scan_ns_reference", scan_ref);
        json.summaryField("converged_scan_ns_incremental", scan_inc);
        json.summaryField("converged_scan_speedup",
                          scan_ref / scan_inc);
    }
    const double sp1 =
        reporter.realTimeNs("BM_ConvergedScanPassParallel/1");
    const double sp2 =
        reporter.realTimeNs("BM_ConvergedScanPassParallel/2");
    const double sp4 =
        reporter.realTimeNs("BM_ConvergedScanPassParallel/4");
    if (sp1 > 0 && sp2 > 0 && sp4 > 0) {
        json.summaryField("converged_scan_ns_parallel1", sp1);
        json.summaryField("converged_scan_ns_parallel2", sp2);
        json.summaryField("converged_scan_ns_parallel4", sp4);
        // Speedup of the 4-thread two-phase pass over the serial
        // incremental pass; < 1 on hosts without the cores.
        if (scan_inc > 0)
            json.summaryField("converged_scan_parallel4_speedup",
                              scan_inc / sp4);
    }
    const double eq16 = reporter.realTimeNs("BM_EventQueueChurn/16");
    const double eq256 = reporter.realTimeNs("BM_EventQueueChurn/256");
    if (eq16 > 0)
        json.summaryField("event_queue_churn_ns_16", eq16);
    if (eq256 > 0)
        json.summaryField("event_queue_churn_ns_256", eq256);
    const double fx1 =
        reporter.realTimeNs("BM_ConvergedForensicsSnapshot/1");
    const double fx4 =
        reporter.realTimeNs("BM_ConvergedForensicsSnapshot/4");
    if (fx1 > 0 && fx4 > 0) {
        json.summaryField("forensics_snapshot_ns_1t", fx1);
        json.summaryField("forensics_snapshot_ns_4t", fx4);
        json.summaryField("forensics_snapshot_speedup_4t", fx1 / fx4);
    }
    const double gts =
        reporter.realTimeNs("BM_GuestTickBatchSerial/iterations:32");
    const double gt2 =
        reporter.realTimeNs("BM_GuestTickBatchParallel2/iterations:32");
    const double gt4 =
        reporter.realTimeNs("BM_GuestTickBatchParallel4/iterations:32");
    if (gts > 0)
        json.summaryField("guest_tick_ns_serial", gts);
    if (gt2 > 0)
        json.summaryField("guest_tick_ns_parallel2", gt2);
    if (gt4 > 0)
        json.summaryField("guest_tick_ns_parallel4", gt4);
    if (gts > 0 && gt4 > 0) {
        // Wall-clock speedup of the 4-thread stage phase over the
        // staged-inline serial drain; < the core count because the
        // commit replay stays serial (docs/PERF.md).
        json.summaryField("guest_tick_parallel4_speedup", gts / gt4);
    }
    const double pml_walk =
        reporter.realTimeNs("BM_PmlScanPassWalkReference/iterations:16");
    const double pml1 =
        reporter.realTimeNs("BM_PmlScanPass1/iterations:16");
    const double pml2 =
        reporter.realTimeNs("BM_PmlScanPass2/iterations:16");
    const double pml4 =
        reporter.realTimeNs("BM_PmlScanPass4/iterations:16");
    if (pml_walk > 0)
        json.summaryField("pml_scan_ns_walk_reference", pml_walk);
    if (pml1 > 0)
        json.summaryField("pml_scan_ns_pml1", pml1);
    if (pml2 > 0)
        json.summaryField("pml_scan_ns_pml2", pml2);
    if (pml4 > 0)
        json.summaryField("pml_scan_ns_pml4", pml4);
    if (pml_walk > 0 && pml1 > 0) {
        // The ISSUE acceptance bar: a converged 1M-page pass with 1%
        // dirty pages must be >= 5x faster log-driven than walked.
        json.summaryField("pml_scan_speedup", pml_walk / pml1);
    }
    const double ab = reporter.realTimeNs("BM_AdaptiveBalloon");
    if (ab > 0)
        json.summaryField("adaptive_balloon_interval_ns", ab);
    const double pp64 = reporter.realTimeNs("BM_PlacementPlan/64");
    const double pp256 = reporter.realTimeNs("BM_PlacementPlan/256");
    if (pp64 > 0)
        json.summaryField("placement_plan_ns_64", pp64);
    if (pp256 > 0)
        json.summaryField("placement_plan_ns_256", pp256);
    const double fer = reporter.realTimeNs("BM_ForEachResidentSparse");
    if (fer > 0)
        json.summaryField("foreach_resident_sparse_ns", fer);
    json.write();
    return 0;
}
