/**
 * @file
 * Fig. 3(b): per-JVM breakdown when DayTrader, SPECjEnterprise 2010
 * and TPC-W run in the same WAS version, one per guest VM, baseline.
 *
 * Paper's point: the limited effectiveness of TPS is not specific to a
 * particular Java workload.
 */

#include "bench/bench_common.hh"
#include "bench/bench_json.hh"

using namespace jtps;

int
main()
{
    setVerbose(false);
    std::vector<workload::WorkloadSpec> vms = {
        workload::dayTraderIntel(),
        workload::specjEnterprise2010(),
        workload::tpcwJava(),
    };
    core::Scenario scenario(bench::paperConfig(false), vms);
    scenario.build();
    scenario.run();

    bench::printJavaBreakdown(
        scenario,
        "Fig. 3(b) — DayTrader / SPECjEnterprise / TPC-W in the same "
        "WAS, default configuration (JVM1=DayTrader, "
        "JVM2=SPECjEnterprise, JVM3=TPC-W)");

    bench::BenchJson json("fig3b_mixed_apps", "Fig. 3(b)");
    bench::emitJavaBreakdownRows(json, scenario);
    json.write();
    return 0;
}
