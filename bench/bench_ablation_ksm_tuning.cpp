/**
 * @file
 * Ablation: KSM tuning (pages_to_scan x sleep_millisecs).
 *
 * The paper scans 10,000 pages per 100 ms wake during warm-up (~25%
 * CPU) and 1,000 afterwards (~2%). This bench sweeps the steady-state
 * scan rate and reports realized savings after a fixed simulated time,
 * together with the modelled scanner CPU cost — the
 * convergence-vs-overhead trade-off that motivates the paper's
 * two-phase schedule.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace jtps;

int
main()
{
    setVerbose(false);
    std::printf("Ablation — KSM scan-rate tuning (DayTrader x 4, class "
                "sharing on, fixed 60 s measurement window)\n\n");
    std::printf("%-14s %-10s %14s %14s %12s\n", "pages_to_scan",
                "sleep_ms", "full_scans", "saved (MiB)", "ksmd CPU");
    std::printf("%s\n", std::string(70, '-').c_str());

    for (std::uint32_t pages : {100u, 500u, 1000u, 4000u, 10000u}) {
        core::ScenarioConfig cfg = bench::paperConfig(true);
        // Single-phase: the sweep value applies for the whole run.
        cfg.ksmWarmupPagesToScan = pages;
        cfg.ksm.pagesToScan = pages;
        cfg.warmupMs = 30'000;
        cfg.steadyMs = 30'000;

        std::vector<workload::WorkloadSpec> vms(
            4, workload::dayTraderIntel());
        core::Scenario scenario(cfg, vms);
        scenario.build();
        scenario.run();

        std::printf("%-14u %-10llu %14llu %14s %11.1f%%\n", pages,
                    (unsigned long long)cfg.ksm.sleepMillisecs,
                    (unsigned long long)scenario.ksm().fullScans(),
                    formatMiB(scenario.ksm().savedBytes()).c_str(),
                    scenario.ksm().cpuUsage() * 100.0);
        std::fflush(stdout);
    }
    std::printf("\npaper operating points: 10,000 pages/100ms during "
                "warm-up (~25%% CPU), 1,000 (~2%%) during measurement\n");
    return 0;
}
