/**
 * @file
 * Ablation: KSM tuning (pages_to_scan x sleep_millisecs).
 *
 * The paper scans 10,000 pages per 100 ms wake during warm-up (~25%
 * CPU) and 1,000 afterwards (~2%). This bench sweeps the steady-state
 * scan rate and reports realized savings after a fixed simulated time,
 * together with the modelled scanner CPU cost — the
 * convergence-vs-overhead trade-off that motivates the paper's
 * two-phase schedule.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "bench/bench_json.hh"

using namespace jtps;

namespace
{

struct Row
{
    std::uint64_t sleepMs = 0;
    std::uint64_t fullScans = 0;
    Bytes savedBytes = 0;
    double cpuUsage = 0.0;
};

Row
measure(std::uint32_t pages)
{
    core::ScenarioConfig cfg = bench::paperConfig(true);
    // Single-phase: the sweep value applies for the whole run.
    cfg.ksmWarmupPagesToScan = pages;
    cfg.ksm.pagesToScan = pages;
    cfg.warmupMs = 30'000;
    cfg.steadyMs = 30'000;

    std::vector<workload::WorkloadSpec> vms(
        4, workload::dayTraderIntel());
    core::Scenario scenario(cfg, vms);
    scenario.build();
    scenario.run();

    return {cfg.ksm.sleepMillisecs, scenario.ksm().fullScans(),
            scenario.ksm().savedBytes(), scenario.ksm().cpuUsage()};
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Ablation — KSM scan-rate tuning (DayTrader x 4, class "
                "sharing on, fixed 60 s measurement window)\n\n");
    std::printf("%-14s %-10s %14s %14s %12s\n", "pages_to_scan",
                "sleep_ms", "full_scans", "saved (MiB)", "ksmd CPU");
    std::printf("%s\n", std::string(70, '-').c_str());

    const std::vector<std::uint32_t> points = {100u, 500u, 1000u, 4000u,
                                               10000u};
    const std::vector<Row> rows = bench::sweep(points, measure);

    bench::BenchJson json("ablation_ksm_tuning", "§IV.A ablation");
    for (std::size_t i = 0; i < points.size(); ++i) {
        std::printf("%-14u %-10llu %14llu %14s %11.1f%%\n", points[i],
                    (unsigned long long)rows[i].sleepMs,
                    (unsigned long long)rows[i].fullScans,
                    formatMiB(rows[i].savedBytes).c_str(),
                    rows[i].cpuUsage * 100.0);
        json.beginRow();
        json.field("pages_to_scan", points[i]);
        json.field("sleep_ms", rows[i].sleepMs);
        json.field("full_scans", rows[i].fullScans);
        json.field("saved_bytes", rows[i].savedBytes);
        json.field("cpu_usage", rows[i].cpuUsage);
        json.endRow();
    }
    json.write();
    std::printf("\npaper operating points: 10,000 pages/100ms during "
                "warm-up (~25%% CPU), 1,000 (~2%%) during measurement\n");
    return 0;
}
