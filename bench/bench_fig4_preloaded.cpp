/**
 * @file
 * Fig. 4: breakdown of physical memory usage and savings with TPS when
 * a shared class cache is populated once and copied to all guest VMs
 * (the paper's technique).
 *
 * Paper's shape: savings in the non-primary Java processes grow from
 * ~20 MB to ~120 MB each; total 4-VM usage drops 3,648 -> 3,314 MB.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "bench/bench_json.hh"

using namespace jtps;

int
main()
{
    setVerbose(false);
    std::vector<workload::WorkloadSpec> vms(4, workload::dayTraderIntel());

    // Baseline first, for the before/after totals the paper quotes.
    core::Scenario base(bench::paperConfig(false), vms);
    base.build();
    base.run();
    Bytes base_total = 0;
    {
        auto acct = base.account();
        for (VmId v = 0; v < 4; ++v)
            base_total += acct.vmBreakdown(v).usageTotal();
    }

    core::Scenario scenario(bench::paperConfig(true), vms);
    scenario.build();
    scenario.run();

    bench::printVmBreakdown(
        scenario,
        "Fig. 4 — physical memory usage + TPS savings, DayTrader x 4, "
        "shared class cache copied to all VMs");

    Bytes cds_total = 0;
    auto acct = scenario.account();
    for (VmId v = 0; v < 4; ++v)
        cds_total += acct.vmBreakdown(v).usageTotal();

    std::printf("total guest memory: default=%s MiB  preloaded=%s MiB  "
                "(paper: 3648 -> 3314 MiB)\n",
                formatMiB(base_total).c_str(),
                formatMiB(cds_total).c_str());

    bench::BenchJson json("fig4_preloaded", "Fig. 4");
    bench::emitVmBreakdownRows(json, scenario);
    json.summaryField("default_total_bytes", base_total);
    json.summaryField("preloaded_total_bytes", cds_total);
    json.write();
    return 0;
}
