/**
 * @file
 * Fig. 3(a): detailed breakdown of each WAS process's memory by the
 * paper's Table IV categories, baseline (no class sharing).
 *
 * Paper's shape: the code area shares effectively; the Java heap shares
 * ~0.7% (transient zero pages); the JVM+JIT work area ~9%; class
 * metadata and JIT code essentially nothing.
 */

#include <cstdio>

#include "analysis/sharing_sources.hh"
#include "bench/bench_common.hh"
#include "bench/bench_json.hh"

using namespace jtps;

int
main()
{
    setVerbose(false);
    std::vector<workload::WorkloadSpec> vms(4, workload::dayTraderIntel());
    core::Scenario scenario(bench::paperConfig(false), vms);
    scenario.build();
    scenario.run();

    bench::printJavaBreakdown(
        scenario,
        "Fig. 3(a) — per-JVM memory breakdown, DayTrader x 4, default "
        "configuration");

    auto acct = scenario.account();
    for (const auto &row : scenario.javaRows()) {
        std::printf("%s class-metadata TPS-shared: %.1f%%\n",
                    row.label.c_str(),
                    100.0 *
                        bench::classMetadataSharedFraction(acct, row));
    }

    bench::BenchJson json("fig3a_jvm_breakdown", "Fig. 3(a)");
    bench::emitJavaBreakdownRows(json, scenario);
    json.write();

    // The paper's §III.A source analysis for one non-primary guest.
    std::printf("\nsources of TPS-shared pages in VM2 (paper: NIO "
                "buffers, malloc-arena slack, bulk-reserved areas, "
                "GC zero pages):\n%s",
                analysis::renderSharingSources(
                    analysis::collectSharingSources(scenario.guest(1)))
                    .c_str());
    return 0;
}
