/**
 * @file
 * Ablation: GC policy vs heap TPS-sharing.
 *
 * Both of the paper's policies (flat compacting optthruput,
 * generational gencon) defeat TPS on the heap — objects move and
 * reclaimed space churns — but they produce different amounts of the
 * transient zero-page sharing the paper observed (§III.A: "most of the
 * shared pages were those filled with zeros"). This bench quantifies
 * heap sharing under each policy and shows it stays marginal either
 * way, confirming the paper's conclusion that only class metadata is
 * worth attacking.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "bench/bench_json.hh"

using namespace jtps;

namespace
{

void
runPolicy(bench::BenchJson &json, const char *label,
          jvm::GcConfig::Policy policy)
{
    auto spec = workload::dayTraderIntel();
    spec.gc.policy = policy;
    if (policy == jvm::GcConfig::Policy::Gencon) {
        spec.gc.nurseryBytes = 400 * MiB; // nursery + 130 MiB tenured
    }

    core::ScenarioConfig cfg = bench::paperConfig(false);
    cfg.warmupMs = 45'000;
    cfg.steadyMs = 45'000;
    std::vector<workload::WorkloadSpec> vms(4, spec);
    core::Scenario scenario(cfg, vms);
    scenario.build();
    scenario.run();

    auto acct = scenario.account();
    Bytes heap_use = 0, heap_shared = 0;
    std::uint64_t global_gcs = 0, minor_gcs = 0;
    const auto idx =
        static_cast<std::size_t>(guest::MemCategory::JavaHeap);
    for (std::size_t i = 0; i < scenario.vmCount(); ++i) {
        const auto &row = scenario.javaRows()[i];
        const auto &pu = acct.usage(row.vm, row.pid);
        heap_use += pu.owned[idx];
        heap_shared += pu.shared[idx];
        global_gcs += scenario.javaVm(i).heap().globalGcCount();
        minor_gcs += scenario.javaVm(i).heap().minorGcCount();
    }
    const double pct =
        heap_use + heap_shared == 0
            ? 0.0
            : 100.0 * static_cast<double>(heap_shared) /
                  static_cast<double>(heap_use + heap_shared);
    std::printf("%-12s heap use=%8s MiB  heap TPS-shared=%7s MiB "
                "(%4.1f%%)  global GCs=%llu minor GCs=%llu\n",
                label, formatMiB(heap_use).c_str(),
                formatMiB(heap_shared).c_str(), pct,
                (unsigned long long)global_gcs,
                (unsigned long long)minor_gcs);
    json.beginRow();
    json.field("policy", label);
    json.field("heap_use_bytes", heap_use);
    json.field("heap_shared_bytes", heap_shared);
    json.field("heap_shared_pct", pct);
    json.field("global_gcs", global_gcs);
    json.field("minor_gcs", minor_gcs);
    json.endRow();
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Ablation — GC policy vs Java-heap TPS sharing "
                "(DayTrader x 4, default configuration)\n\n");
    bench::BenchJson json("ablation_gc_policy", "§III.A ablation");
    runPolicy(json, "optthruput", jvm::GcConfig::Policy::OptThruput);
    runPolicy(json, "gencon", jvm::GcConfig::Policy::Gencon);
    json.write();
    std::printf("\npaper: ~0.7%% of the heap shared, all transient "
                "zero-filled pages, under either policy\n");
    return 0;
}
