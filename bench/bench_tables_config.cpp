/**
 * @file
 * Tables I-III: environment and configuration of the modelled machines,
 * guests, and Java applications — printed from the structs the
 * simulator actually runs with.
 */

#include <cstdio>

#include "core/paper_tables.hh"

int
main()
{
    std::printf("TABLE I. Environment and configuration of the physical "
                "machines.\n\n%s\n",
                jtps::core::renderTable1().c_str());
    std::printf("TABLE II. Configuration of a guest virtual machine.\n\n"
                "%s\n",
                jtps::core::renderTable2().c_str());
    std::printf("TABLE III. Configuration parameters of the Java "
                "applications and Java VMs.\n\n%s\n",
                jtps::core::renderTable3().c_str());
    return 0;
}
