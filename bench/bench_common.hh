/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Every bench binary regenerates one table or figure of the paper. The
 * simulated phase lengths are shorter than the paper's 3 min + 90 min
 * (KSM convergence in the model needs a few full scan passes, not wall
 * hours), but the protocol — aggressive scan during warm-up, throttled
 * scan during measurement, snapshot at the end — is the same.
 */

#ifndef JTPS_BENCH_BENCH_COMMON_HH
#define JTPS_BENCH_BENCH_COMMON_HH

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "base/thread_pool.hh"
#include "core/scenario.hh"

namespace jtps::bench
{

/**
 * Worker count for sweep(): $JTPS_BENCH_THREADS if set (1 forces the
 * serial path), otherwise the hardware concurrency.
 */
inline unsigned
sweepThreads()
{
    if (const char *env = std::getenv("JTPS_BENCH_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed >= 1)
            return static_cast<unsigned>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/**
 * Evaluate @p fn on every element of @p points — concurrently when
 * sweepThreads() > 1 — and return the results in point order.
 *
 * Each sweep point builds and runs its own Scenario, which owns every
 * piece of mutable state it touches (hypervisor, stat set, RNGs), so
 * points are independent and deterministic. Results are collected into
 * pre-assigned slots and printed by the caller in point order
 * afterwards, so the output is byte-identical at any thread count.
 */
template <typename Point, typename Fn>
auto
sweep(const std::vector<Point> &points, Fn fn)
    -> std::vector<decltype(fn(points[0]))>
{
    using Result = decltype(fn(points[0]));
    std::vector<Result> results(points.size());
    const unsigned threads = static_cast<unsigned>(std::min<std::size_t>(
        sweepThreads(), points.size()));
    if (threads <= 1) {
        for (std::size_t i = 0; i < points.size(); ++i)
            results[i] = fn(points[i]);
        return results;
    }
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < points.size(); ++i)
        pool.submit([&results, &points, &fn, i]() {
            results[i] = fn(points[i]);
        });
    pool.wait();
    return results;
}

/** Standard Intel/KVM scenario configuration (Tables I-II). */
inline core::ScenarioConfig
paperConfig(bool class_sharing)
{
    core::ScenarioConfig cfg;
    cfg.enableClassSharing = class_sharing;
    cfg.warmupMs = 45'000;  // paper: 3 min at pages_to_scan=10,000
    cfg.steadyMs = 90'000;  // paper: 90 min at pages_to_scan=1,000
    return cfg;
}

/** Print the Fig. 2 / Fig. 4 style per-VM breakdown. */
inline void
printVmBreakdown(core::Scenario &scenario, const std::string &title)
{
    auto acct = scenario.account();
    std::printf("%s\n\n%s\n", title.c_str(),
                analysis::renderVmBreakdownReport(acct,
                                                  scenario.vmNames())
                    .c_str());
}

/** Print the Fig. 3 / Fig. 5 style per-JVM category breakdown. */
inline void
printJavaBreakdown(core::Scenario &scenario, const std::string &title)
{
    auto acct = scenario.account();
    std::printf("%s\n\n%s\n", title.c_str(),
                analysis::renderJavaBreakdownReport(acct,
                                                    scenario.javaRows())
                    .c_str());
}

/** Class-metadata sharing fraction of one JVM (paper's 89.6% metric). */
inline double
classMetadataSharedFraction(const analysis::OwnerAccounting &acct,
                            const analysis::JavaProcRow &row)
{
    const auto &pu = acct.usage(row.vm, row.pid);
    const auto idx =
        static_cast<std::size_t>(guest::MemCategory::ClassMetadata);
    const Bytes total = pu.owned[idx] + pu.shared[idx];
    if (total == 0)
        return 0.0;
    return static_cast<double>(pu.shared[idx]) /
           static_cast<double>(total);
}

} // namespace jtps::bench

#endif // JTPS_BENCH_BENCH_COMMON_HH
