/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Every bench binary regenerates one table or figure of the paper. The
 * simulated phase lengths are shorter than the paper's 3 min + 90 min
 * (KSM convergence in the model needs a few full scan passes, not wall
 * hours), but the protocol — aggressive scan during warm-up, throttled
 * scan during measurement, snapshot at the end — is the same.
 */

#ifndef JTPS_BENCH_BENCH_COMMON_HH
#define JTPS_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "core/scenario.hh"

namespace jtps::bench
{

/** Standard Intel/KVM scenario configuration (Tables I-II). */
inline core::ScenarioConfig
paperConfig(bool class_sharing)
{
    core::ScenarioConfig cfg;
    cfg.enableClassSharing = class_sharing;
    cfg.warmupMs = 45'000;  // paper: 3 min at pages_to_scan=10,000
    cfg.steadyMs = 90'000;  // paper: 90 min at pages_to_scan=1,000
    return cfg;
}

/** Print the Fig. 2 / Fig. 4 style per-VM breakdown. */
inline void
printVmBreakdown(core::Scenario &scenario, const std::string &title)
{
    auto acct = scenario.account();
    std::printf("%s\n\n%s\n", title.c_str(),
                analysis::renderVmBreakdownReport(acct,
                                                  scenario.vmNames())
                    .c_str());
}

/** Print the Fig. 3 / Fig. 5 style per-JVM category breakdown. */
inline void
printJavaBreakdown(core::Scenario &scenario, const std::string &title)
{
    auto acct = scenario.account();
    std::printf("%s\n\n%s\n", title.c_str(),
                analysis::renderJavaBreakdownReport(acct,
                                                    scenario.javaRows())
                    .c_str());
}

/** Class-metadata sharing fraction of one JVM (paper's 89.6% metric). */
inline double
classMetadataSharedFraction(const analysis::OwnerAccounting &acct,
                            const analysis::JavaProcRow &row)
{
    const auto &pu = acct.usage(row.vm, row.pid);
    const auto idx =
        static_cast<std::size_t>(guest::MemCategory::ClassMetadata);
    const Bytes total = pu.owned[idx] + pu.shared[idx];
    if (total == 0)
        return 0.0;
    return static_cast<double>(pu.shared[idx]) /
           static_cast<double>(total);
}

} // namespace jtps::bench

#endif // JTPS_BENCH_BENCH_COMMON_HH
