/**
 * @file
 * Ablation: owner-oriented vs distribution-oriented (PSS) accounting
 * of the same snapshot (paper §II.A).
 *
 * The owner-oriented scheme charges each shared frame entirely to one
 * owner (Java first, then smallest PID) and shows the *savings* of
 * every non-primary process; PSS splits each frame evenly. Both
 * conserve total resident bytes — they answer different questions.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "bench/bench_json.hh"

using namespace jtps;

int
main()
{
    setVerbose(false);
    std::vector<workload::WorkloadSpec> vms(4, workload::dayTraderIntel());
    core::ScenarioConfig cfg = bench::paperConfig(true);
    cfg.warmupMs = 30'000;
    cfg.steadyMs = 45'000;
    core::Scenario scenario(cfg, vms);
    scenario.build();
    scenario.run();

    analysis::Snapshot snap = scenario.snapshot();
    analysis::OwnerAccounting owner(snap);
    analysis::PssAccounting pss(snap);

    std::printf("Ablation — owner-oriented vs PSS attribution of one "
                "snapshot (DayTrader x 4, class sharing on)\n\n");
    std::printf("%-8s %18s %18s %14s\n", "process", "owner-based (MiB)",
                "owner shared", "PSS (MiB)");
    std::printf("%s\n", std::string(64, '-').c_str());

    bench::BenchJson json("ablation_accounting", "§II.A ablation");
    for (const auto &row : scenario.javaRows()) {
        const auto &pu = owner.usage(row.vm, row.pid);
        std::printf("%-8s %18s %18s %14.1f\n", row.label.c_str(),
                    formatMiB(pu.ownedTotal()).c_str(),
                    formatMiB(pu.sharedTotal()).c_str(),
                    pss.pss(row.vm, row.pid) / MiB);
        json.beginRow();
        json.field("process", row.label);
        json.field("owner_owned_bytes", pu.ownedTotal());
        json.field("owner_shared_bytes", pu.sharedTotal());
        json.field("pss_bytes", pss.pss(row.vm, row.pid));
        json.endRow();
    }

    std::printf("\nconservation: owner-attributed=%s MiB, "
                "PSS total=%.1f MiB, resident=%s MiB\n",
                formatMiB(owner.attributedBytes()).c_str(),
                pss.totalBytes() / MiB,
                formatMiB(owner.residentBytes()).c_str());
    json.summaryField("owner_attributed_bytes", owner.attributedBytes());
    json.summaryField("pss_total_bytes", pss.totalBytes());
    json.summaryField("resident_bytes", owner.residentBytes());
    json.write();
    std::printf("\nthe owner-based view directly answers the paper's "
                "question: how much extra physical memory does one more "
                "VM cost? (its non-primary processes' pages are free)\n");
    return 0;
}
