/**
 * @file
 * Extension: ballooning vs TPS class preloading (paper §VI).
 *
 * At the 8-VM DayTrader density point, a balloon manager inflates a
 * fixed balloon in every guest (the guests shed page cache), which
 * relieves host paging — but the dropped cache refaults from disk on
 * the guests' own file activity. The paper's approach reclaims a
 * similar amount via TPS with no refault cost. This bench compares
 * both, and their combination.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "guest/balloon.hh"

using namespace jtps;

namespace
{

struct Result
{
    double throughput;
    Bytes reclaimed;
    std::uint64_t cacheMisses;
};

Result
measure(bool class_sharing, Bytes balloon_bytes, int num_vms)
{
    core::ScenarioConfig cfg = bench::paperConfig(class_sharing);
    cfg.warmupMs = 70'000;
    cfg.steadyMs = 60'000;
    std::vector<workload::WorkloadSpec> vms(
        num_vms, workload::dayTraderIntel());
    core::Scenario scenario(cfg, vms);
    scenario.build();

    Result res{0, 0, 0};
    if (balloon_bytes > 0) {
        // The balloon manager sizes every guest down right after boot.
        for (int v = 0; v < num_vms; ++v) {
            guest::BalloonDriver balloon(scenario.guest(v));
            res.reclaimed += balloon.inflate(balloon_bytes);
        }
    }
    scenario.run();
    res.throughput = scenario.aggregateThroughput(12);
    for (int v = 0; v < num_vms; ++v)
        res.cacheMisses += scenario.guest(v).cacheMisses();
    return res;
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Extension — ballooning vs class preloading, "
                "8 DayTrader guests on 6 GB\n\n");
    std::printf("%-40s %12s %14s %14s\n", "configuration", "rq/s",
                "ballooned", "cache misses");
    std::printf("%s\n", std::string(84, '-').c_str());

    struct Case
    {
        const char *label;
        bool cds;
        Bytes balloon;
    };
    const Case cases[] = {
        {"default", false, 0},
        {"balloon 120 MiB per guest", false, 120 * MiB},
        {"copied shared class cache (paper)", true, 0},
        {"balloon + class cache", true, 120 * MiB},
    };
    for (const Case &c : cases) {
        Result r = measure(c.cds, c.balloon, 8);
        std::printf("%-40s %12.1f %10s MiB %14llu\n", c.label,
                    r.throughput, formatMiB(r.reclaimed).c_str(),
                    (unsigned long long)r.cacheMisses);
        std::fflush(stdout);
    }
    std::printf("\nballooning frees memory by *discarding* cache (later "
                "refaults hit the disk); TPS frees it by *sharing* "
                "(reads stay free) — the paper's §VI distinction\n");
    return 0;
}
