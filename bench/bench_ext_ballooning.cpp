/**
 * @file
 * Extension: balloon policy comparison — static vs adaptive vs
 * ksmtuned (paper §VI).
 *
 * The paper's §VI ballooning comparison uses fixed, hand-picked
 * balloon sizes because KVM ships no balloon policy manager. This
 * bench adds the missing manager and compares four policies on a
 * mixed 8-VM fleet — 4 loaded DayTrader guests plus 4 near-idle
 * appliances (booted WAS, a trickle of traffic), the asymmetry every
 * real consolidation host has and a fixed balloon size cannot see:
 *
 *   - none:      no reclaim beyond the baseline KSM schedule
 *   - static:    a fixed 120 MiB balloon inflated in every guest at
 *                boot (the paper's hand-sized approach — busy and
 *                idle guests shed the same page cache, and the busy
 *                ones refault it from disk later)
 *   - adaptive:  core::BalloonGovernor resizing each balloon every
 *                interval toward the guest's PML-estimated write
 *                working set plus slack, with refault backoff — it
 *                should balloon the idle guests deep and leave the
 *                loaded ones alone
 *   - ksmtuned:  no balloons at all — the ksm::KsmTuned governor owns
 *                the scan rate and reclaims by sharing instead of by
 *                discarding (reads stay free, the §VI distinction)
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "bench/bench_json.hh"
#include "guest/balloon.hh"
#include "ksm/ksm_tuned.hh"

using namespace jtps;

namespace
{

enum class Policy
{
    None,
    Static,
    Adaptive,
    Ksmtuned
};

struct Result
{
    double throughput;
    Bytes ballooned;
    Bytes balloonedBusy;
    Bytes balloonedIdle;
    std::uint64_t cacheMisses;
    Bytes hostResident;
    std::uint64_t wssResizes;
    std::uint64_t pmlAppends;
};

constexpr int numBusy = 4;
constexpr int numIdle = 4;
constexpr int numVms = numBusy + numIdle;
constexpr Tick warmupMs = 70'000;
constexpr Tick steadyMs = 120'000;

/**
 * A consolidation-fodder guest: same image and boot as the loaded
 * DayTrader VMs, but almost no traffic — the memory a working-set
 * governor should find and a fixed balloon size cannot.
 */
workload::WorkloadSpec
idleAppliance()
{
    workload::WorkloadSpec s = workload::dayTraderIntel();
    s.name += "-idle";
    s.clientThreads = 1;
    s.guestCacheTouchesPerEpoch = 60;
    s.lazyClassesPerEpoch = 40;
    s.jitCompilesPerEpoch = 12;
    return s;
}

Result
measure(Policy policy)
{
    core::ScenarioConfig cfg = bench::paperConfig(false);
    cfg.warmupMs = warmupMs;
    cfg.steadyMs = steadyMs;
    if (policy == Policy::Adaptive) {
        cfg.pmlRingSlots = 4096;
        cfg.adaptiveBalloon = true;
    }
    std::vector<workload::WorkloadSpec> vms(
        numBusy, workload::dayTraderIntel());
    vms.insert(vms.end(), numIdle, idleAppliance());
    core::Scenario scenario(cfg, vms);
    scenario.build();

    std::vector<std::unique_ptr<guest::BalloonDriver>> balloons;
    if (policy == Policy::Static) {
        // The balloon manager sizes every guest down right after boot
        // and never revisits the choice.
        for (int v = 0; v < numVms; ++v) {
            balloons.push_back(std::make_unique<guest::BalloonDriver>(
                scenario.guest(v)));
            balloons.back()->inflate(120 * MiB);
        }
    }

    std::unique_ptr<ksm::KsmTuned> tuned;
    if (policy == Policy::Ksmtuned) {
        // The governor owns pages_to_scan instead of the paper's
        // manual two-phase schedule.
        ksm::KsmTunedConfig tcfg;
        tuned = std::make_unique<ksm::KsmTuned>(
            scenario.hv(), scenario.ksm(), tcfg, scenario.stats());
        tuned->attach(scenario.queue());
        scenario.ksm().setPagesToScan(640);
        scenario.ksm().attach(scenario.queue());
        scenario.runFor(warmupMs + steadyMs);
    } else {
        scenario.run();
    }

    Result res{};
    res.throughput = scenario.aggregateThroughput(12);
    for (int v = 0; v < numVms; ++v) {
        const Bytes held =
            pagesToBytes(scenario.guest(v).balloonHeldPages());
        res.ballooned += held;
        (v < numBusy ? res.balloonedBusy : res.balloonedIdle) += held;
        res.cacheMisses += scenario.guest(v).cacheMisses();
    }
    res.hostResident = pagesToBytes(scenario.hv().residentFrames());
    res.wssResizes = scenario.stats().get("balloon.wss_resizes");
    res.pmlAppends = scenario.stats().get("hv.pml_appends");
    return res;
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Extension — balloon policy: static vs adaptive vs "
                "ksmtuned, %d loaded + %d idle DayTrader guests, "
                "%llu s horizon\n\n",
                numBusy, numIdle,
                (unsigned long long)((warmupMs + steadyMs) / 1000));
    std::printf("%-36s %10s %12s %16s %12s %14s %10s\n", "policy",
                "rq/s", "ballooned", "busy/idle MiB", "resident",
                "cache misses", "resizes");
    std::printf("%s\n", std::string(116, '-').c_str());

    struct Case
    {
        const char *label;
        const char *key;
        Policy policy;
    };
    const Case cases[] = {
        {"none (baseline KSM schedule)", "none", Policy::None},
        {"static balloon 120 MiB per guest", "static", Policy::Static},
        {"adaptive (PML working-set governor)", "adaptive",
         Policy::Adaptive},
        {"ksmtuned (share, don't discard)", "ksmtuned",
         Policy::Ksmtuned},
    };

    bench::BenchJson json("ext_ballooning", "paper section VI");
    double static_rqs = 0, adaptive_rqs = 0;
    Bytes static_ballooned = 0, adaptive_ballooned = 0;
    std::uint64_t adaptive_resizes = 0;
    for (const Case &c : cases) {
        Result r = measure(c.policy);
        char split[32];
        std::snprintf(split, sizeof(split), "%s/%s",
                      formatMiB(r.balloonedBusy).c_str(),
                      formatMiB(r.balloonedIdle).c_str());
        std::printf("%-36s %10.1f %8s MiB %16s %8s MiB %14llu %10llu\n",
                    c.label, r.throughput,
                    formatMiB(r.ballooned).c_str(), split,
                    formatMiB(r.hostResident).c_str(),
                    (unsigned long long)r.cacheMisses,
                    (unsigned long long)r.wssResizes);
        std::fflush(stdout);
        json.beginRow();
        json.field("policy", c.key);
        json.field("rq_s", r.throughput);
        json.field("ballooned_mib", (double)r.ballooned / MiB);
        json.field("ballooned_busy_mib", (double)r.balloonedBusy / MiB);
        json.field("ballooned_idle_mib", (double)r.balloonedIdle / MiB);
        json.field("host_resident_mib", (double)r.hostResident / MiB);
        json.field("cache_misses", r.cacheMisses);
        json.field("wss_resizes", r.wssResizes);
        json.field("pml_appends", r.pmlAppends);
        json.endRow();
        if (c.policy == Policy::Static) {
            static_rqs = r.throughput;
            static_ballooned = r.ballooned;
        } else if (c.policy == Policy::Adaptive) {
            adaptive_rqs = r.throughput;
            adaptive_ballooned = r.ballooned;
            adaptive_resizes = r.wssResizes;
        }
    }
    json.summaryField("static_rq_s", static_rqs);
    json.summaryField("adaptive_rq_s", adaptive_rqs);
    json.summaryField("static_ballooned_mib",
                      (double)static_ballooned / MiB);
    json.summaryField("adaptive_ballooned_mib",
                      (double)adaptive_ballooned / MiB);
    json.summaryField("adaptive_wss_resizes", adaptive_resizes);
    json.write();

    std::printf("\nstatic ballooning frees memory by *discarding* cache "
                "once, hand-sized and blind to load (busy and idle "
                "guests shed the same amount; the busy ones refault it "
                "from the disk); the adaptive governor re-sizes each "
                "balloon to the PML-estimated working set plus refault "
                "feedback, so it balloons the idle guests and leaves "
                "the loaded ones alone; ksmtuned frees memory by "
                "*sharing* (reads stay free) — the paper's section VI "
                "distinction\n");
    return 0;
}
