/**
 * @file
 * Fig. 7: DayTrader throughput as the number of 1 GiB guest VMs grows
 * from 1 to 9 on the 6 GB host, default configuration vs. the paper's
 * class-preloading approach.
 *
 * Paper's shape: both scale linearly to 7 VMs; at 8 VMs the default
 * configuration collapses (17.2 rq/s) while the preloaded one stays
 * high (148.1); at 9 VMs both collapse (2.9 vs 6.8). The mechanism is
 * a GC-driven swap storm: once the host deficit exceeds the guests'
 * genuinely cold memory, every collection faults on the pages it
 * rewrites and the shared swap disk saturates.
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace jtps;

namespace
{

double
measure(int num_vms, bool class_sharing)
{
    core::ScenarioConfig cfg = bench::paperConfig(class_sharing);
    cfg.warmupMs = 70'000;
    cfg.steadyMs = 60'000;
    std::vector<workload::WorkloadSpec> vms(
        num_vms, workload::dayTraderIntel());
    core::Scenario scenario(cfg, vms);
    scenario.build();
    scenario.run();
    return scenario.aggregateThroughput(12);
}

struct SweepPoint
{
    int vms;
    bool preloaded;
};

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Fig. 7 — DayTrader throughput vs number of guest VMs "
                "(6 GB host)\n\n");
    std::printf("%-6s %22s %22s\n", "VMs", "default (rq/s)",
                "preloaded (rq/s)");
    std::printf("%s\n", std::string(52, '-').c_str());

    // Every (vm count, configuration) point is an independent scenario:
    // fan them out over the sweep harness, print in point order.
    std::vector<SweepPoint> points;
    for (int n = 1; n <= 9; ++n) {
        points.push_back({n, false});
        points.push_back({n, true});
    }
    const std::vector<double> results = bench::sweep(
        points,
        [](const SweepPoint &p) { return measure(p.vms, p.preloaded); });

    for (int n = 1; n <= 9; ++n) {
        const double def = results[2 * (n - 1)];
        const double ours = results[2 * (n - 1) + 1];
        std::printf("%-6d %22.1f %22.1f\n", n, def, ours);
    }
    std::printf("\npaper: linear to 7 VMs; at 8: default 17.2 vs ours "
                "148.1; at 9: 2.9 vs 6.8\n");
    return 0;
}
