/**
 * @file
 * Fig. 7: DayTrader throughput as the number of 1 GiB guest VMs grows
 * from 1 to 9 on the 6 GB host, default configuration vs. the paper's
 * class-preloading approach.
 *
 * Paper's shape: both scale linearly to 7 VMs; at 8 VMs the default
 * configuration collapses (17.2 rq/s) while the preloaded one stays
 * high (148.1); at 9 VMs both collapse (2.9 vs 6.8). The mechanism is
 * a GC-driven swap storm: once the host deficit exceeds the guests'
 * genuinely cold memory, every collection faults on the pages it
 * rewrites and the shared swap disk saturates.
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "bench/bench_json.hh"

using namespace jtps;

namespace
{

struct Result
{
    double rqPerSec = 0.0;
    std::uint64_t pagesShared = 0;
    std::uint64_t pagesSharing = 0;
};

Result
measure(int num_vms, bool class_sharing)
{
    core::ScenarioConfig cfg = bench::paperConfig(class_sharing);
    cfg.warmupMs = 70'000;
    cfg.steadyMs = 60'000;
    std::vector<workload::WorkloadSpec> vms(
        num_vms, workload::dayTraderIntel());
    core::Scenario scenario(cfg, vms);
    scenario.build();
    scenario.run();
    return {scenario.aggregateThroughput(12),
            scenario.ksm().pagesShared(), scenario.ksm().pagesSharing()};
}

struct SweepPoint
{
    int vms;
    bool preloaded;
};

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Fig. 7 — DayTrader throughput vs number of guest VMs "
                "(6 GB host)\n\n");
    std::printf("%-6s %22s %22s\n", "VMs", "default (rq/s)",
                "preloaded (rq/s)");
    std::printf("%s\n", std::string(52, '-').c_str());

    // Every (vm count, configuration) point is an independent scenario:
    // fan them out over the sweep harness, print in point order.
    std::vector<SweepPoint> points;
    for (int n = 1; n <= 9; ++n) {
        points.push_back({n, false});
        points.push_back({n, true});
    }
    const std::vector<Result> results = bench::sweep(
        points,
        [](const SweepPoint &p) { return measure(p.vms, p.preloaded); });

    bench::BenchJson json("fig7_daytrader_scaling", "Fig. 7");
    for (int n = 1; n <= 9; ++n) {
        const Result &def = results[2 * (n - 1)];
        const Result &ours = results[2 * (n - 1) + 1];
        std::printf("%-6d %22.1f %22.1f\n", n, def.rqPerSec,
                    ours.rqPerSec);
        json.beginRow();
        json.field("vms", n);
        json.field("default_rq_s", def.rqPerSec);
        json.field("preloaded_rq_s", ours.rqPerSec);
        json.field("default_pages_shared", def.pagesShared);
        json.field("default_pages_sharing", def.pagesSharing);
        json.field("preloaded_pages_shared", ours.pagesShared);
        json.field("preloaded_pages_sharing", ours.pagesSharing);
        json.endRow();
    }
    json.write();
    std::printf("\npaper: linear to 7 VMs; at 8: default 17.2 vs ours "
                "148.1; at 9: 2.9 vs 6.8\n");
    return 0;
}
