/**
 * @file
 * Extension: KSM convergence under the paper's manual scan schedule
 * vs. the ksmtuned governor.
 *
 * The paper hand-tunes ksmd (10,000 pages/100 ms for the first three
 * minutes, then 1,000). Production RHEL hosts ran `ksmtuned`, which
 * adapts the rate to memory pressure. This bench records the savings
 * timeline under both policies for the 4-VM DayTrader setup with the
 * copied class cache, using the time-series sharing monitor.
 */

#include <cstdio>

#include "analysis/sharing_monitor.hh"
#include "bench/bench_common.hh"
#include "ksm/ksm_tuned.hh"

using namespace jtps;

namespace
{

void
run(const char *label, bool governed)
{
    core::ScenarioConfig cfg = bench::paperConfig(true);
    cfg.warmupMs = 40'000;
    cfg.steadyMs = 40'000;
    std::vector<workload::WorkloadSpec> vms(6, workload::dayTraderIntel());
    core::Scenario scenario(cfg, vms);
    scenario.build();

    analysis::SharingMonitor monitor(scenario.hv(), scenario.ksm());
    monitor.attach(scenario.queue(), 10'000);

    std::unique_ptr<ksm::KsmTuned> tuned;
    if (governed) {
        // Let the governor own pages_to_scan: neutralize the paper's
        // manual schedule by starting both phases at the same rate.
        cfg.ksmWarmupPagesToScan = 640;
        ksm::KsmTunedConfig tcfg;
        tuned = std::make_unique<ksm::KsmTuned>(
            scenario.hv(), scenario.ksm(), tcfg, scenario.stats());
        tuned->attach(scenario.queue());
        scenario.ksm().setPagesToScan(640);
        scenario.ksm().attach(scenario.queue());
        scenario.runFor(80'000);
    } else {
        scenario.run(); // the paper's two-phase schedule
    }

    std::printf("%s\n", label);
    std::printf("%s\n", monitor.renderTable().c_str());
    if (tuned) {
        std::printf("ksmtuned: %llu boosts, %llu decays, final "
                    "pages_to_scan=%u\n\n",
                    (unsigned long long)tuned->boosts(),
                    (unsigned long long)tuned->decays(),
                    scenario.ksm().config().pagesToScan);
    } else {
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Extension — KSM convergence timeline: manual schedule "
                "vs ksmtuned governor (DayTrader x 6, copied cache)\n\n");
    run("paper's manual schedule (10000 warm-up, 1000 steady):", false);
    run("ksmtuned governor (min 640, max 12500, boost on pressure):",
        true);
    std::printf("note: ksmtuned only boosts once committed memory "
                "crosses its free threshold — on an under-committed "
                "host it idles at the floor and shares almost nothing, "
                "which is why the paper pins the scan rate by hand.\n");
    return 0;
}
