/**
 * @file
 * Fleet consolidation: placement policy x balloon policy at
 * datacenter scale (cluster layer headline bench).
 *
 * 16 hosts x 16 VMs (256 VMs; override with argv [hosts] [perHost])
 * serve a compressed diurnal day of demand from a million-user-scale
 * service, under real memory pressure (hosts sized at the fleet's
 * resident-demand knee) with pressure-driven live migration enabled.
 * Two axes:
 *
 *   - placement: naive round-robin vs the sharing-aware
 *     core::PlacementPlanner (collocate VMs whose content
 *     fingerprints overlap, so KSM finds whole-archive merges);
 *   - ballooning: a fixed 120 MiB balloon per guest vs the adaptive
 *     PML working-set governor.
 *
 * The cluster reduces per-host results serially in host order, so
 * every number here is byte-identical at any --fleet-threads; the
 * bench also measures the host-parallel thread scaling (wall time at
 * 1/2/4 fleet threads over identical simulated work) and asserts the
 * outputs really are identical.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.hh"
#include "bench/bench_json.hh"
#include "cluster/cluster.hh"
#include "guest/balloon.hh"

using namespace jtps;

namespace
{

constexpr Tick warmupMs = 16'000;
constexpr Tick steadyMs = 32'000;

struct FleetResult
{
    double wallMs = 0.0;
    double rqs = 0.0;
    std::uint64_t pagesShared = 0;
    std::uint64_t pagesSharing = 0;
    std::uint64_t residentFrames = 0;
    std::uint64_t slaMet = 0;
    std::uint64_t slaMissed = 0;
    std::uint64_t offered = 0;
    std::uint64_t served = 0;
    std::uint64_t migrations = 0;
    std::uint64_t downtimeUs = 0;
    std::string signature; //!< full cluster document (no wall time)
};

/**
 * The fleet's workload population: a 5-cycle of busy DayTrader,
 * near-idle appliance, SPECjEnterprise, TPC-W and Tuscany. The cycle
 * length is coprime with any power-of-two host count, so round-robin
 * placement genuinely scatters workloads (each host a grab-bag) while
 * the dedup-aware planner can regroup them by content.
 */
std::vector<workload::WorkloadSpec>
fleetSpecs(std::size_t count)
{
    workload::WorkloadSpec idle = workload::dayTraderIntel();
    idle.name += "-idle";
    idle.clientThreads = 1;
    idle.guestCacheTouchesPerEpoch = 60;
    idle.lazyClassesPerEpoch = 40;
    idle.jitCompilesPerEpoch = 12;
    const workload::WorkloadSpec cycle[] = {
        workload::dayTraderIntel(), idle,
        workload::specjEnterprise2010(), workload::tpcwJava(),
        workload::tuscanyBigbank()};
    std::vector<workload::WorkloadSpec> specs;
    specs.reserve(count);
    for (std::size_t l = 0; l < count; ++l)
        specs.push_back(cycle[l % 5]);
    return specs;
}

cluster::ClusterConfig
fleetConfig(std::size_t hosts, std::size_t per_host,
            cluster::PlacementPolicy placement, bool adaptive,
            unsigned fleet_threads)
{
    cluster::ClusterConfig cfg;
    cfg.hosts = hosts;
    cfg.slotsPerHost = per_host + 1; // migration headroom
    cfg.placement = placement;
    cfg.fleetThreads = fleet_threads;
    cfg.migrationEnabled = true;
    cfg.roundMs = 8'000;
    cfg.dayMs = 96'000; // the run sweeps trough -> peak
    // Constant per-VM demand share across fleet sizes: the reference
    // fleet is 256 VMs serving a million users.
    cfg.peakUsers = 1'000'000.0 *
                    static_cast<double>(hosts * per_host) / 256.0;

    cfg.host = bench::paperConfig(true);
    cfg.host.warmupMs = warmupMs;
    // RAM sits at the demand knee (~640 MiB resident per VM): without
    // dedup a host is slightly overcommitted and pays fault latency,
    // with it the reclaimed pages are the difference. Scales with the
    // per-host VM count so reduced CI runs hit the same regime.
    cfg.host.host.ramBytes = per_host * 640ULL * MiB;
    // Overcommitted hosts keep scanning hard at steady state (what
    // ksmtuned does once committed memory crosses its threshold) —
    // at the default throttle, eviction churn destroys merges faster
    // than a 1000-page batch can re-form them across 16 guests.
    cfg.host.ksm.pagesToScan = 5'000;
    cfg.host.pmlRingSlots = 4096;
    cfg.host.adaptiveBalloon = adaptive;
    return cfg;
}

FleetResult
measure(std::size_t hosts, std::size_t per_host,
        cluster::PlacementPolicy placement, bool adaptive,
        unsigned fleet_threads)
{
    cluster::Cluster fleet(
        fleetConfig(hosts, per_host, placement, adaptive,
                    fleet_threads),
        fleetSpecs(hosts * per_host));
    fleet.build();
    if (!adaptive) {
        // The paper's hand-sized approach: one fixed balloon per
        // guest, inflated at boot and never revisited.
        for (std::size_t h = 0; h < fleet.hostCount(); ++h) {
            core::Scenario &host = fleet.host(h);
            for (std::size_t v = 0; v < host.vmCount(); ++v) {
                guest::BalloonDriver balloon(host.guest(v));
                balloon.inflate(120 * MiB);
            }
        }
    }

    const auto t0 = std::chrono::steady_clock::now();
    fleet.run(warmupMs + steadyMs);
    const auto t1 = std::chrono::steady_clock::now();
    for (std::size_t h = 0; h < fleet.hostCount(); ++h)
        fleet.host(h).hv().checkConsistency();

    FleetResult r;
    r.wallMs = std::chrono::duration<double, std::milli>(t1 - t0)
                   .count();
    r.rqs = fleet.aggregateThroughput(8);
    const StatSet &st = fleet.stats();
    r.pagesShared = st.get("cluster.pages_shared");
    r.pagesSharing = st.get("cluster.pages_sharing");
    r.residentFrames = st.get("cluster.resident_frames");
    r.slaMet = st.get("cluster.sla_met_epochs");
    r.slaMissed = st.get("cluster.sla_missed_epochs");
    r.offered = st.get("cluster.offered_requests");
    r.served = st.get("cluster.served_requests");
    r.migrations = st.get("migration.count");
    r.downtimeUs = st.get("migration.downtime_us_total");

    JsonWriter w;
    w.beginObject();
    fleet.writeJsonFields(w);
    w.endObject();
    r.signature = w.str();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const std::size_t hosts =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 16;
    const std::size_t per_host =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 16;
    const unsigned threads = bench::sweepThreads();

    std::printf("Fleet consolidation — %zu hosts x %zu VMs (%zu VMs), "
                "%zu MiB hosts, diurnal demand, live migration on, "
                "%llu s horizon, %u fleet threads\n\n",
                hosts, per_host, hosts * per_host, per_host * 640,
                (unsigned long long)((warmupMs + steadyMs) / 1000),
                threads);
    std::printf("%-28s %10s %12s %10s %9s %9s %8s %12s\n",
                "placement / balloon", "rq/s", "sharing pg", "resident",
                "SLA met", "missed", "migr", "downtime us");
    std::printf("%s\n", std::string(104, '-').c_str());

    struct Case
    {
        const char *label;
        const char *placementKey;
        cluster::PlacementPolicy placement;
        bool adaptive;
    };
    const Case cases[] = {
        {"round-robin / static", "rr",
         cluster::PlacementPolicy::RoundRobin, false},
        {"round-robin / adaptive", "rr",
         cluster::PlacementPolicy::RoundRobin, true},
        {"dedup-aware / static", "dedup",
         cluster::PlacementPolicy::DedupAware, false},
        {"dedup-aware / adaptive", "dedup",
         cluster::PlacementPolicy::DedupAware, true},
    };

    bench::BenchJson json("fleet_consolidation", "cluster extension");
    FleetResult byCase[4];
    for (int c = 0; c < 4; ++c) {
        const Case &k = cases[c];
        byCase[c] = measure(hosts, per_host, k.placement, k.adaptive,
                            threads);
        const FleetResult &r = byCase[c];
        std::printf("%-28s %10.1f %12llu %6s MiB %9llu %9llu %8llu "
                    "%12llu\n",
                    k.label, r.rqs, (unsigned long long)r.pagesSharing,
                    formatMiB(pagesToBytes(r.residentFrames)).c_str(),
                    (unsigned long long)r.slaMet,
                    (unsigned long long)r.slaMissed,
                    (unsigned long long)r.migrations,
                    (unsigned long long)r.downtimeUs);
        std::fflush(stdout);
        json.beginRow();
        json.field("placement", k.placementKey);
        json.field("balloon", k.adaptive ? "adaptive" : "static");
        json.field("rq_s", r.rqs);
        json.field("pages_shared", r.pagesShared);
        json.field("pages_sharing", r.pagesSharing);
        json.field("resident_frames", r.residentFrames);
        json.field("sla_met_epochs", r.slaMet);
        json.field("sla_missed_epochs", r.slaMissed);
        json.field("offered_requests", r.offered);
        json.field("served_requests", r.served);
        json.field("migrations", r.migrations);
        json.field("downtime_us", r.downtimeUs);
        json.endRow();
    }

    // Host-parallel thread scaling: the same dedup+adaptive fleet at
    // 1/2/4 fleet threads. Simulated work is identical, so wall time
    // measures the fan-out and the documents must match bytewise.
    std::printf("\nhost-parallel scaling (dedup/adaptive fleet):\n");
    double wall[3] = {0, 0, 0};
    const unsigned points[3] = {1, 2, 4};
    bool identical = true;
    for (int p = 0; p < 3; ++p) {
        const FleetResult r =
            measure(hosts, per_host,
                    cluster::PlacementPolicy::DedupAware, true,
                    points[p]);
        wall[p] = r.wallMs;
        identical = identical && r.signature == byCase[3].signature;
        std::printf("  fleet-threads %u: %8.0f ms wall%s\n", points[p],
                    r.wallMs,
                    r.signature == byCase[3].signature
                        ? ""
                        : "  (MISMATCH vs reference)");
        std::fflush(stdout);
    }
    if (!identical) {
        std::fprintf(stderr, "FAIL: cluster output depends on "
                             "--fleet-threads\n");
        return 1;
    }
    std::printf("  speedup: %0.2fx at 2 threads, %0.2fx at 4 "
                "(byte-identical output)\n",
                wall[0] / wall[1], wall[0] / wall[2]);

    json.summaryField("rr_static_pages_sharing",
                      byCase[0].pagesSharing);
    json.summaryField("rr_pages_sharing", byCase[1].pagesSharing);
    json.summaryField("dedup_static_pages_sharing",
                      byCase[2].pagesSharing);
    json.summaryField("dedup_pages_sharing", byCase[3].pagesSharing);
    json.summaryField("rr_sla_met_epochs", byCase[1].slaMet);
    json.summaryField("dedup_sla_met_epochs", byCase[3].slaMet);
    json.summaryField("rr_rq_s", byCase[1].rqs);
    json.summaryField("dedup_rq_s", byCase[3].rqs);
    json.summaryField("migrations_total",
                      byCase[0].migrations + byCase[1].migrations +
                          byCase[2].migrations + byCase[3].migrations);
    json.summaryField("fleet_wall_ms_threads1", wall[0]);
    json.summaryField("fleet_wall_ms_threads2", wall[1]);
    json.summaryField("fleet_wall_ms_threads4", wall[2]);
    json.summaryField("fleet_parallel2_speedup", wall[0] / wall[1]);
    json.summaryField("fleet_parallel4_speedup", wall[0] / wall[2]);
    json.summaryField("fleet_threads_identical", identical ? 1 : 0);
    json.write();

    std::printf("\ndedup-aware placement collocates VMs whose content "
                "fingerprints overlap (same middleware archive, same "
                "libraries), so KSM converges to more sharing per "
                "host; under the same diurnal demand that sharing is "
                "spare RAM, fewer major faults, and more SLA-met "
                "epochs than round-robin scatter. The adaptive "
                "governor compounds it by returning idle guests' "
                "memory. Hosts advance in parallel and reduce "
                "serially, so the whole document is byte-identical at "
                "any fleet-thread count.\n");
    return 0;
}
