/**
 * @file
 * Fig. 2: breakdown of physical memory usage and savings with TPS, for
 * four 1 GiB KVM guests each running WAS + DayTrader, default
 * configuration (no cross-VM class sharing).
 *
 * Paper's shape: Java processes dominate (~750 MB each); the guest
 * kernel is ~219 MB in the owner VM and ~106 MB elsewhere (about half
 * of the kernel area TPS-shared); TPS savings inside the Java
 * processes are small (~20 MB per non-primary process).
 */

#include <cstdio>

#include "bench/bench_common.hh"

using namespace jtps;

int
main()
{
    setVerbose(false);
    std::vector<workload::WorkloadSpec> vms(4, workload::dayTraderIntel());
    core::Scenario scenario(bench::paperConfig(false), vms);
    scenario.build();
    scenario.run();

    bench::printVmBreakdown(
        scenario,
        "Fig. 2 — physical memory usage + TPS savings, DayTrader x 4, "
        "default configuration");

    auto &ksm = scenario.ksm();
    std::printf("ksm: full_scans=%llu pages_shared=%llu "
                "pages_sharing=%llu saved=%s MiB cpu(steady)=%.1f%%\n",
                (unsigned long long)ksm.fullScans(),
                (unsigned long long)ksm.pagesShared(),
                (unsigned long long)ksm.pagesSharing(),
                formatMiB(ksm.savedBytes()).c_str(),
                ksm.cpuUsage() * 100.0);
    return 0;
}
