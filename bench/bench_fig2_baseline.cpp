/**
 * @file
 * Fig. 2: breakdown of physical memory usage and savings with TPS, for
 * four 1 GiB KVM guests each running WAS + DayTrader, default
 * configuration (no cross-VM class sharing).
 *
 * Paper's shape: Java processes dominate (~750 MB each); the guest
 * kernel is ~219 MB in the owner VM and ~106 MB elsewhere (about half
 * of the kernel area TPS-shared); TPS savings inside the Java
 * processes are small (~20 MB per non-primary process).
 */

#include <cstdio>

#include "bench/bench_common.hh"
#include "bench/bench_json.hh"

using namespace jtps;

int
main()
{
    setVerbose(false);
    std::vector<workload::WorkloadSpec> vms(4, workload::dayTraderIntel());
    core::Scenario scenario(bench::paperConfig(false), vms);
    scenario.build();
    scenario.run();

    bench::printVmBreakdown(
        scenario,
        "Fig. 2 — physical memory usage + TPS savings, DayTrader x 4, "
        "default configuration");

    bench::BenchJson json("fig2_baseline", "Fig. 2");
    bench::emitVmBreakdownRows(json, scenario);

    auto &ksm = scenario.ksm();
    std::printf("ksm: full_scans=%llu pages_shared=%llu "
                "pages_sharing=%llu saved=%s MiB cpu(steady)=%.1f%%\n",
                (unsigned long long)ksm.fullScans(),
                (unsigned long long)ksm.pagesShared(),
                (unsigned long long)ksm.pagesSharing(),
                formatMiB(ksm.savedBytes()).c_str(),
                ksm.cpuUsage() * 100.0);
    json.summaryField("full_scans", ksm.fullScans());
    json.summaryField("pages_shared", ksm.pagesShared());
    json.summaryField("pages_sharing", ksm.pagesSharing());
    json.summaryField("saved_bytes", ksm.savedBytes());
    json.summaryField("cpu_usage", ksm.cpuUsage());
    json.write();
    return 0;
}
