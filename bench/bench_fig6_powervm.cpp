/**
 * @file
 * Fig. 6: physical memory usage of three 3.5 GB AIX guests on PowerVM
 * running WAS + DayTrader, before and after the platform TPS finishes,
 * with and without preloaded classes.
 *
 * Paper's shape: saving grows from 243.4 MB (no preload) to 424.4 MB
 * (preload) — +181 MB, i.e. ~90.5 MB per non-primary VM out of the
 * 100 MB cache (>90% of the shared class area becomes shareable).
 */

#include <cstdio>

#include "base/units.hh"
#include "bench/bench_json.hh"
#include "core/power_scenario.hh"

using namespace jtps;

namespace
{

core::PowerResult
runOnce(bool preload)
{
    core::PowerScenarioConfig cfg;
    cfg.preloadClasses = preload;
    core::PowerScenario scenario(cfg);
    scenario.build();
    return scenario.measure();
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("Fig. 6 — PowerVM/AIX: total physical memory of three "
                "guests, before/after TPS\n\n");
    std::printf("%-28s %16s %16s %12s\n", "configuration",
                "before sharing", "after sharing", "saving");
    std::printf("%s\n", std::string(76, '-').c_str());

    core::PowerResult no_preload = runOnce(false);
    core::PowerResult preload = runOnce(true);

    auto print_row = [](const char *label, const core::PowerResult &r) {
        std::printf("%-28s %12s MiB %12s MiB %8s MiB\n", label,
                    formatMiB(r.usageBeforeSharing).c_str(),
                    formatMiB(r.usageAfterSharing).c_str(),
                    formatMiB(r.saving()).c_str());
    };
    print_row("classes not preloaded", no_preload);
    print_row("classes preloaded", preload);

    const double delta = static_cast<double>(preload.saving()) -
                         static_cast<double>(no_preload.saving());
    std::printf("\nincreased sharing by preloading: %.1f MiB "
                "(paper: 181.0 MiB; per non-primary VM: %.1f MiB of the "
                "100 MiB cache)\n",
                delta / MiB, delta / MiB / 2.0);

    bench::BenchJson json("fig6_powervm", "Fig. 6");
    auto emit_row = [&json](const char *label,
                            const core::PowerResult &r) {
        json.beginRow();
        json.field("configuration", label);
        json.field("before_sharing_bytes", r.usageBeforeSharing);
        json.field("after_sharing_bytes", r.usageAfterSharing);
        json.field("saving_bytes", r.saving());
        json.endRow();
    };
    emit_row("classes not preloaded", no_preload);
    emit_row("classes preloaded", preload);
    json.summaryField("increased_sharing_bytes",
                      static_cast<std::int64_t>(preload.saving()) -
                          static_cast<std::int64_t>(no_preload.saving()));
    json.write();
    return 0;
}
