/**
 * @file
 * Fig. 3(c): per-JVM breakdown for three Tuscany bigbank servers
 * (no WAS), baseline. Shows the pattern holds for small non-WAS
 * middleware too.
 */

#include "bench/bench_common.hh"
#include "bench/bench_json.hh"

using namespace jtps;

int
main()
{
    setVerbose(false);
    std::vector<workload::WorkloadSpec> vms(
        3, workload::tuscanyBigbank());
    core::Scenario scenario(bench::paperConfig(false), vms);
    scenario.build();
    scenario.run();

    bench::printJavaBreakdown(
        scenario,
        "Fig. 3(c) — three Tuscany bigbank processes, default "
        "configuration");

    bench::BenchJson json("fig3c_tuscany", "Fig. 3(c)");
    bench::emitJavaBreakdownRows(json, scenario);
    json.write();
    return 0;
}
